#include "sim/dataset_builder.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/log.hpp"
#include "common/thread_pool.hpp"

namespace ns {
namespace {

constexpr std::size_t sig_idx(Signal s) { return static_cast<std::size_t>(s); }

}  // namespace

SimDataset build_sim_dataset(const SimDatasetConfig& config) {
  SimDataset out;
  out.config = config;
  Rng rng(config.seed);

  // 1. Schedule jobs.
  ScheduleResult schedule = generate_schedule(config.scheduler, rng);
  out.sched_jobs = schedule.jobs;

  // 2. Metric catalog.
  const std::vector<RawMetricSpec> catalog =
      build_metric_catalog(config.catalog);
  const std::size_t num_metrics = catalog.size();
  const std::size_t T = config.scheduler.total_timestamps;
  const std::size_t N = config.scheduler.num_nodes;
  out.train_end = static_cast<std::size_t>(
      config.train_fraction * static_cast<double>(T));

  // 3. Fault plan over the test region.
  FaultPlanConfig fault_config;
  fault_config.region_begin = out.train_end;
  fault_config.region_end = T;
  fault_config.target_ratio = config.anomaly_ratio;
  fault_config.min_duration = config.fault_min_duration;
  fault_config.max_duration = config.fault_max_duration;
  Rng fault_rng = rng.fork(0xFA51);
  out.faults = plan_faults(fault_config, N, fault_rng);

  // Index faults per node for the generation pass.
  std::vector<std::vector<const FaultEvent*>> node_faults(N);
  for (const FaultEvent& ev : out.faults)
    node_faults[ev.node].push_back(&ev);

  // 4+5. Per node: semantic signals along the job timeline, fault overlay,
  // raw metric fan-out, missing-data dropout.
  out.data.metrics.reserve(num_metrics);
  for (const auto& spec : catalog) out.data.metrics.push_back(spec.meta);
  out.data.interval_seconds = 15.0;
  out.data.nodes.resize(N);
  out.data.jobs = schedule.spans;
  out.data.labels.assign(N, std::vector<std::uint8_t>(T, 0));

  std::unordered_map<std::int64_t, WorkloadType> job_type;
  job_type.reserve(schedule.jobs.size());
  for (const SchedJob& job : schedule.jobs) job_type.emplace(job.job_id, job.type);

  parallel_for(0, N, [&](std::size_t n) {
    Rng node_rng(config.seed ^ (0xC0FFEEull + n * 0x9E3779B97F4A7C15ull));
    NodeSeries& series = out.data.nodes[n];
    series.node_name = "node-" + std::to_string(n);
    series.values.assign(num_metrics, std::vector<float>(T, 0.0f));

    // Semantic signal matrix for this node.
    std::vector<std::array<double, kNumSignals>> sem(T);
    for (const JobSpan& span : schedule.spans[n]) {
      // All nodes of a job share the plan (same seed); idle spans get
      // their own plan per node (negative ids are node-local anyway).
      Rng job_rng(job_plan_seed(config.seed, span.job_id));
      WorkloadType type = WorkloadType::kIdle;
      if (!span.is_idle()) {
        const auto it = job_type.find(span.job_id);
        NS_CHECK(it != job_type.end(), "span references unknown job id");
        type = it->second;
      }
      const WorkloadPlan plan = make_workload_plan(type, job_rng);
      for (std::size_t t = span.begin; t < span.end; ++t)
        sem[t] = evaluate_plan(plan, t - span.begin, span.length(), node_rng);
    }

    // Fault overlay + labels. The running workload at each step decides the
    // impostor signature (see apply_fault), so it is resolved per step as
    // faults may straddle job boundaries.
    for (const FaultEvent* ev : node_faults[n]) {
      for (std::size_t t = ev->begin; t < ev->end && t < T; ++t) {
        WorkloadType running = WorkloadType::kIdle;
        for (const JobSpan& span : schedule.spans[n]) {
          if (t >= span.begin && t < span.end) {
            if (!span.is_idle()) running = job_type.at(span.job_id);
            break;
          }
        }
        const double progress = static_cast<double>(t - ev->begin) /
                                static_cast<double>(ev->end - ev->begin);
        apply_fault(sem[t], ev->type, progress, ev->magnitude, running);
        out.data.labels[n][t] = 1;
      }
    }

    // Raw fan-out.
    for (std::size_t m = 0; m < num_metrics; ++m) {
      const RawMetricSpec& spec = catalog[m];
      std::vector<float>& raw = series.values[m];
      if (spec.kind == RawMetricKind::kConstant) {
        for (std::size_t t = 0; t < T; ++t)
          raw[t] = static_cast<float>(spec.constant_value);
        continue;
      }
      const std::size_t s = sig_idx(spec.source);
      for (std::size_t t = 0; t < T; ++t) {
        double v = spec.gain * sem[t][s] + spec.offset;
        if (spec.unit_noise > 0.0)
          v += spec.unit_noise * node_rng.gaussian();
        raw[t] = static_cast<float>(v);
      }
    }

    // Missing-data dropout.
    if (config.missing_rate > 0.0) {
      const std::size_t drops = static_cast<std::size_t>(
          config.missing_rate * static_cast<double>(num_metrics) *
          static_cast<double>(T));
      for (std::size_t d = 0; d < drops; ++d) {
        const std::size_t m = static_cast<std::size_t>(
            node_rng.uniform_int(0, static_cast<std::int64_t>(num_metrics) - 1));
        const std::size_t t = static_cast<std::size_t>(
            node_rng.uniform_int(0, static_cast<std::int64_t>(T) - 1));
        series.values[m][t] = kMissingValue;
      }
    }
  });

  out.data.validate();
  NS_LOG_INFO("built dataset '" << config.name << "': " << N << " nodes, "
                                << out.sched_jobs.size() << " jobs, "
                                << num_metrics << " raw metrics, " << T
                                << " steps, " << out.faults.size()
                                << " fault events");
  return out;
}

SimDatasetConfig d1_sim_config(double scale, std::uint64_t seed) {
  SimDatasetConfig config;
  config.name = "D1-sim";
  config.seed = seed;
  config.scheduler.num_nodes =
      std::max<std::size_t>(8, static_cast<std::size_t>(32 * scale));
  config.scheduler.total_timestamps =
      std::max<std::size_t>(600, static_cast<std::size_t>(2880 * scale));
  // Short enough that every node cycles through most workload archetypes
  // within the 60% training prefix (the paper trains on a full week of
  // production jobs, giving each node broad pattern coverage).
  config.scheduler.median_duration_steps = 110.0 * std::max(0.25, scale);
  config.scheduler.duration_sigma = 0.8;
  config.scheduler.max_duration_steps =
      std::max<std::size_t>(300, static_cast<std::size_t>(720 * scale));
  config.scheduler.max_job_width = 8;
  // D1 hardware: many cores, redundant exporters -> ~10x reduction.
  config.catalog.cores = 8;
  config.catalog.nics = 2;
  config.catalog.disks = 2;
  config.catalog.derived_per_signal = 2;
  config.catalog.constant_metrics = 4;
  config.anomaly_ratio = 0.0016;  // Table 2
  return config;
}

SimDatasetConfig d2_sim_config(double scale, std::uint64_t seed) {
  SimDatasetConfig config;
  config.name = "D2-sim";
  config.seed = seed;
  config.scheduler.num_nodes =
      std::max<std::size_t>(4, static_cast<std::size_t>(10 * scale));
  config.scheduler.total_timestamps =
      std::max<std::size_t>(600, static_cast<std::size_t>(1920 * scale));
  config.scheduler.median_duration_steps = 90.0 * std::max(0.25, scale);
  config.scheduler.duration_sigma = 0.8;
  config.scheduler.max_duration_steps =
      std::max<std::size_t>(240, static_cast<std::size_t>(480 * scale));
  config.scheduler.max_job_width = 4;
  // D2 hardware: smaller nodes, fewer exporters (773 vs 3014 raw).
  config.catalog.cores = 4;
  config.catalog.nics = 1;
  config.catalog.disks = 1;
  config.catalog.derived_per_signal = 1;
  config.catalog.constant_metrics = 2;
  config.anomaly_ratio = 0.0004;  // Table 2
  config.fault_min_duration = 6;
  config.fault_max_duration = 24;
  return config;
}

SimDatasetConfig deployment_sim_config(std::uint64_t seed) {
  SimDatasetConfig config = d2_sim_config(1.0, seed);
  config.name = "deployment-sim";
  // §5.1: LAMMPS molecular dynamics + systematic ChaosBlade injection.
  config.anomaly_ratio = 0.025;  // denser fault campaign
  config.fault_min_duration = 10;
  config.fault_max_duration = 60;
  return config;
}

}  // namespace ns
