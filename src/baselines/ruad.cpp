#include "baselines/ruad.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "nn/lstm.hpp"
#include "nn/optim.hpp"

namespace ns {
namespace {

Tensor window_tokens(const MtsDataset& dataset, std::size_t node,
                     std::size_t begin, std::size_t end) {
  const std::size_t M = dataset.num_metrics();
  Tensor x(Shape{end - begin, M});
  for (std::size_t t = begin; t < end; ++t)
    for (std::size_t m = 0; m < M; ++m)
      x.at(t - begin, m) = dataset.nodes[node].values[m][t];
  return x;
}

}  // namespace

DetectorReport Ruad::run(const MtsDataset& processed, std::size_t train_end) {
  DetectorReport report;
  const std::size_t N = processed.num_nodes();
  const std::size_t T = processed.num_timestamps();
  const std::size_t M = processed.num_metrics();
  const std::size_t W = config_.window;
  report.detections.assign(N, NodeDetection{});

  std::vector<double> train_seconds(N, 0.0), detect_seconds(N, 0.0);
  parallel_for(0, N, [&](std::size_t n) {
    Stopwatch train_sw;
    Rng rng(config_.seed ^ (n * 0x9E3779B97F4A7C15ull + 23));
    LstmAutoencoder ae(M, config_.hidden, rng);
    Adam optimizer(ae.parameters(), config_.learning_rate);

    // Sliding training windows, subsampled to the per-node cap.
    std::vector<std::size_t> starts;
    for (std::size_t begin = 0; begin + W <= train_end;
         begin += config_.train_stride)
      starts.push_back(begin);
    if (starts.size() > config_.max_windows_per_node) {
      std::vector<std::size_t> kept;
      const double step = static_cast<double>(starts.size()) /
                          static_cast<double>(config_.max_windows_per_node);
      for (std::size_t i = 0; i < config_.max_windows_per_node; ++i)
        kept.push_back(starts[static_cast<std::size_t>(i * step)]);
      starts = std::move(kept);
    }
    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
      for (std::size_t begin : starts) {
        const Tensor x = window_tokens(processed, n, begin, begin + W);
        optimizer.zero_grad();
        Var loss = vmse_loss(ae.forward(Var::constant(x)), x);
        loss.backward();
        optimizer.step();
      }
    }
    train_seconds[n] = train_sw.elapsed_s();

    Stopwatch detect_sw;
    ae.set_training(false);
    NodeDetection& det = report.detections[n];
    det.scores.assign(T, 0.0f);
    for (std::size_t begin = train_end; begin < T; begin += W) {
      const std::size_t end = std::min(T, begin + W);
      if (end - begin < 4) break;
      const Tensor x = window_tokens(processed, n, begin, end);
      const Var out = ae.forward(Var::constant(x));
      for (std::size_t t = begin; t < end; ++t) {
        double err = 0.0;
        for (std::size_t m = 0; m < M; ++m) {
          const double d = out.value().at(t - begin, m) - x.at(t - begin, m);
          err += d * d;
        }
        det.scores[t] = static_cast<float>(err / static_cast<double>(M));
      }
    }
    det.predictions = baseline_threshold(det.scores, train_end, T);
    detect_seconds[n] = detect_sw.elapsed_s();
  });
  for (std::size_t n = 0; n < N; ++n) {
    report.train_seconds += train_seconds[n];
    report.detect_seconds += detect_seconds[n];
  }
  return report;
}

}  // namespace ns
