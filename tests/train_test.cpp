// Contracts of the batched mini-batch trainer (core/trainer.hpp,
// DESIGN.md §11) and the satellite fixes that ride along with it:
//  - batch == 1 reproduces the classic one-step-per-chunk trainer bit for
//    bit (parameters, residual scale, baseline error);
//  - the residual-statistics pass is batch-size- and thread-count-invariant;
//  - block-diagonal forwards match per-chunk forwards bitwise in training
//    mode (MoE routing and segment-aware positions intact);
//  - ksigma_flags warms up after min(window, 8) samples, so small-window
//    configs actually threshold;
//  - forced-k fits report the forced cut's own silhouette without running
//    the sweep.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/nodesentry.hpp"
#include "core/trainer.hpp"
#include "nn/optim.hpp"
#include "sim/dataset_builder.hpp"
#include "tensor/autograd.hpp"

namespace ns {
namespace {

TransformerConfig tiny_model_config(std::size_t input_dim) {
  TransformerConfig cfg;
  cfg.input_dim = input_dim;
  cfg.d_model = 12;
  cfg.num_layers = 2;
  cfg.num_heads = 3;
  cfg.ffn_hidden = 16;
  cfg.num_experts = 3;
  cfg.top_k = 1;
  cfg.max_position = 64;
  cfg.max_segments = 8;
  return cfg;
}

// Synthetic chunk set: three chunks over two segments with distinct lengths
// and non-trivial offsets, as the cluster chunker would produce.
std::vector<TrainChunk> make_chunks(std::size_t M) {
  Rng data_rng(77);
  const std::size_t lens[3] = {12, 9, 7};
  const std::size_t seg[3] = {0, 1, 1};
  const std::size_t first[3] = {0, 0, 9};
  std::vector<TrainChunk> chunks(3);
  for (std::size_t c = 0; c < 3; ++c) {
    chunks[c].tokens = Tensor::randn(Shape{lens[c], M}, data_rng);
    chunks[c].offsets.resize(lens[c]);
    std::iota(chunks[c].offsets.begin(), chunks[c].offsets.end(), first[c]);
    chunks[c].segment_id = seg[c];
  }
  return chunks;
}

Tensor make_weights(std::size_t M) {
  Tensor w(Shape{M});
  for (std::size_t m = 0; m < M; ++m)
    w.at(m) = 0.8f + 0.1f * static_cast<float>(m);
  return w;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b,
                          const char* what) {
  ASSERT_EQ(a.numel(), b.numel()) << what;
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)))
      << what << " differs bitwise";
}

void expect_params_bitwise_equal(const TransformerReconstructor& a,
                                 const TransformerReconstructor& b) {
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    expect_bitwise_equal(pa[i].value(), pb[i].value(), "parameter");
}

// The pre-batching trainer, verbatim: one Adam step per chunk, per-chunk
// forwards, running-sum residual statistics. The batched trainer at
// batch == 1 must reproduce it bit for bit.
TrainStats classic_train(TransformerReconstructor& model,
                         const std::vector<TrainChunk>& chunks,
                         const Tensor& weights, const TrainOptions& options,
                         std::uint64_t seed) {
  Rng rng(seed);
  model.set_training(true);
  Adam optimizer(model.parameters(), options.learning_rate);
  std::vector<std::size_t> order(chunks.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
    for (std::size_t idx : order) {
      const TrainChunk& chunk = chunks[idx];
      optimizer.zero_grad();
      const std::vector<std::size_t> seg_ids(chunk.tokens.size(0),
                                             chunk.segment_id);
      Tensor corrupted = chunk.tokens.clone();
      const std::size_t rows = corrupted.size(0), cols = corrupted.size(1);
      for (std::size_t t = 0; t < rows; ++t) {
        if (options.denoise_token_drop > 0.0f &&
            rng.bernoulli(options.denoise_token_drop)) {
          for (std::size_t m = 0; m < cols; ++m) corrupted.at(t, m) = 0.0f;
          continue;
        }
        if (options.denoise_noise > 0.0f)
          for (std::size_t m = 0; m < cols; ++m)
            corrupted.at(t, m) += static_cast<float>(
                rng.gaussian(0.0, options.denoise_noise));
      }
      Var out = model.forward(Var::constant(corrupted), chunk.offsets,
                              seg_ids, rng);
      Var loss = vwmse_loss(out, chunk.tokens, weights);
      Var aux = model.aux_loss();
      if (aux.defined()) loss = vadd(loss, aux);
      loss.backward();
      optimizer.step();
    }
  }
  model.set_training(false);

  const std::size_t M = weights.numel();
  std::vector<double> resid(M, 0.0);
  std::size_t err_count = 0;
  std::vector<Tensor> outputs;
  outputs.reserve(chunks.size());
  for (const TrainChunk& chunk : chunks) {
    const std::vector<std::size_t> seg_ids(chunk.tokens.size(0),
                                           chunk.segment_id);
    const Var out = model.forward(Var::constant(chunk.tokens), chunk.offsets,
                                  seg_ids, rng);
    outputs.push_back(out.value());
    for (std::size_t t = 0; t < chunk.tokens.size(0); ++t) {
      for (std::size_t m = 0; m < M; ++m) {
        const double d = out.value().at(t, m) - chunk.tokens.at(t, m);
        resid[m] += d * d;
      }
      ++err_count;
    }
  }
  TrainStats stats;
  stats.residual_scale = Tensor(Shape{M});
  for (std::size_t m = 0; m < M; ++m)
    stats.residual_scale.at(m) = static_cast<float>(std::max(
        1e-6, err_count > 0 ? resid[m] / static_cast<double>(err_count)
                            : 1.0));
  double err_sum = 0.0;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    const TrainChunk& chunk = chunks[c];
    for (std::size_t t = 0; t < chunk.tokens.size(0); ++t) {
      double err = 0.0;
      for (std::size_t m = 0; m < M; ++m) {
        const double d = outputs[c].at(t, m) - chunk.tokens.at(t, m);
        err += weights.at(m) * d * d / stats.residual_scale.at(m);
      }
      err_sum += err / static_cast<double>(M);
    }
  }
  stats.baseline_error =
      err_count > 0 ? std::max(1e-6, err_sum / err_count) : 1.0;
  return stats;
}

TrainOptions default_options() {
  TrainOptions options;
  options.epochs = 3;
  options.learning_rate = 2e-3f;
  options.denoise_noise = 0.4f;
  options.denoise_token_drop = 0.15f;
  return options;
}

TEST(Trainer, BatchOneMatchesClassicTrainerBitwise) {
  const std::size_t M = 4;
  const auto chunks = make_chunks(M);
  const Tensor weights = make_weights(M);
  TrainOptions options = default_options();
  options.batch = 1;

  Rng init_a(42), init_b(42);
  TransformerReconstructor classic(tiny_model_config(M), init_a);
  TransformerReconstructor batched(tiny_model_config(M), init_b);

  const TrainStats ref = classic_train(classic, chunks, weights, options, 9);
  const TrainStats got =
      train_reconstructor(batched, chunks, weights, options, 9);

  expect_params_bitwise_equal(classic, batched);
  expect_bitwise_equal(ref.residual_scale, got.residual_scale,
                       "residual_scale");
  EXPECT_EQ(ref.baseline_error, got.baseline_error);
}

TEST(Trainer, BatchedTrainingStaysFiniteAndClose) {
  // At batch > 1 the optimizer trajectory legitimately differs from the
  // classic trainer; the result must still be a usable model with sane
  // statistics (the end-to-end quality gate lives in core_test on the sim
  // dataset, which runs with the batched default).
  const std::size_t M = 4;
  const auto chunks = make_chunks(M);
  const Tensor weights = make_weights(M);
  TrainOptions options = default_options();
  options.batch = 8;

  Rng init(42);
  TransformerReconstructor model(tiny_model_config(M), init);
  const TrainStats stats =
      train_reconstructor(model, chunks, weights, options, 9);

  ASSERT_EQ(stats.residual_scale.numel(), M);
  for (std::size_t m = 0; m < M; ++m) {
    EXPECT_TRUE(std::isfinite(stats.residual_scale.at(m)));
    EXPECT_GE(stats.residual_scale.at(m), 1e-6f);
  }
  EXPECT_TRUE(std::isfinite(stats.baseline_error));
  EXPECT_GT(stats.baseline_error, 0.0);
}

TEST(Trainer, ResidualStatsBatchSizeInvariant) {
  // epochs == 0 keeps the parameters at their (shared) initialization, so
  // any difference between batch sizes could only come from the eval-side
  // batching of the residual pass — which must be bitwise invisible.
  const std::size_t M = 4;
  const auto chunks = make_chunks(M);
  const Tensor weights = make_weights(M);
  TrainOptions options = default_options();
  options.epochs = 0;

  TrainStats by_batch[3];
  const std::size_t batches[3] = {1, 2, 8};
  for (std::size_t i = 0; i < 3; ++i) {
    Rng init(42);
    TransformerReconstructor model(tiny_model_config(M), init);
    options.batch = batches[i];
    by_batch[i] = train_reconstructor(model, chunks, weights, options, 9);
  }
  for (std::size_t i = 1; i < 3; ++i) {
    expect_bitwise_equal(by_batch[0].residual_scale,
                         by_batch[i].residual_scale, "residual_scale");
    EXPECT_EQ(by_batch[0].baseline_error, by_batch[i].baseline_error);
  }
}

TEST(Trainer, ResidualStatsThreadCountInvariant) {
  const std::size_t M = 4;
  const auto chunks = make_chunks(M);
  const Tensor weights = make_weights(M);
  TrainOptions options = default_options();
  options.batch = 4;

  ThreadPool one(1);
  ThreadPool many(5);
  Rng init_a(42), init_b(42);
  TransformerReconstructor model_a(tiny_model_config(M), init_a);
  TransformerReconstructor model_b(tiny_model_config(M), init_b);
  options.pool = &one;
  const TrainStats serial =
      train_reconstructor(model_a, chunks, weights, options, 9);
  options.pool = &many;
  const TrainStats parallel =
      train_reconstructor(model_b, chunks, weights, options, 9);

  expect_params_bitwise_equal(model_a, model_b);
  expect_bitwise_equal(serial.residual_scale, parallel.residual_scale,
                       "residual_scale");
  EXPECT_EQ(serial.baseline_error, parallel.baseline_error);
}

TEST(Trainer, EmptyChunkListYieldsNeutralStats) {
  const std::size_t M = 3;
  Rng init(42);
  TransformerReconstructor model(tiny_model_config(M), init);
  const TrainStats stats = train_reconstructor(
      model, {}, make_weights(M), default_options(), 9);
  ASSERT_EQ(stats.residual_scale.numel(), M);
  for (std::size_t m = 0; m < M; ++m)
    EXPECT_EQ(stats.residual_scale.at(m), 1.0f);
  EXPECT_EQ(stats.baseline_error, 1.0);
}

TEST(Trainer, BlockedForwardMatchesPerChunkInTrainingMode) {
  // The block-diagonal training forward must equal the per-chunk forwards
  // bitwise: block-local attention, per-chunk positional offsets and
  // segment ids, and MoE routing all see identical inputs. dropout is 0 so
  // neither path consumes RNG.
  const std::size_t M = 4;
  const auto chunks = make_chunks(M);
  Rng init(42);
  TransformerReconstructor model(tiny_model_config(M), init);
  model.set_training(true);

  std::size_t rows = 0;
  for (const TrainChunk& c : chunks) rows += c.tokens.size(0);
  Tensor x(Shape{rows, M});
  std::vector<std::size_t> offsets, seg_ids, block_lens;
  std::size_t r0 = 0;
  for (const TrainChunk& c : chunks) {
    const std::size_t len = c.tokens.size(0);
    std::copy_n(c.tokens.data(), len * M, x.data() + r0 * M);
    offsets.insert(offsets.end(), c.offsets.begin(), c.offsets.end());
    seg_ids.insert(seg_ids.end(), len, c.segment_id);
    block_lens.push_back(len);
    r0 += len;
  }
  Rng fwd_rng(5);
  const Var blocked = model.forward_blocked(Var::constant(x), offsets,
                                            seg_ids, fwd_rng, block_lens);
  r0 = 0;
  for (const TrainChunk& c : chunks) {
    const std::size_t len = c.tokens.size(0);
    Rng chunk_rng(5);
    const std::vector<std::size_t> ids(len, c.segment_id);
    const Var single =
        model.forward(Var::constant(c.tokens), c.offsets, ids, chunk_rng);
    const Tensor got = slice_rows(blocked.value(), r0, r0 + len);
    expect_bitwise_equal(single.value(), got, "blocked forward rows");
    r0 += len;
  }
}

TEST(Trainer, BlockAttentionMatchesComposedOpsBitwise) {
  // The fused block-attention node must reproduce the composed op chain
  // (slice / matmul / transpose / scale / softmax / matmul / concat) bit
  // for bit in both directions: same kernels in the same order forward,
  // and a backward that sums the same factor pairs in the same order.
  const std::size_t T = 12, dh = 6;
  const std::vector<std::size_t> block_lens{5, 3, 4};
  const float scale = 0.5f;
  Rng rng(21);
  const Tensor qv = Tensor::randn(Shape{T, dh}, rng);
  const Tensor kv = Tensor::randn(Shape{T, dh}, rng);
  const Tensor vv = Tensor::randn(Shape{T, dh}, rng);
  const Tensor target = Tensor::randn(Shape{T, dh}, rng);

  Var q1 = Var::leaf(qv.clone(), true);
  Var k1 = Var::leaf(kv.clone(), true);
  Var v1 = Var::leaf(vv.clone(), true);
  Var fused = vblock_attention(q1, k1, v1, block_lens, scale);
  vmse_loss(fused, target).backward();

  Var q2 = Var::leaf(qv.clone(), true);
  Var k2 = Var::leaf(kv.clone(), true);
  Var v2 = Var::leaf(vv.clone(), true);
  std::vector<Var> blocks;
  std::size_t base = 0;
  for (std::size_t len : block_lens) {
    Var qb = vslice_rows(q2, base, base + len);
    Var kb = vslice_rows(k2, base, base + len);
    Var vb = vslice_rows(v2, base, base + len);
    Var scores = vscale(vmatmul(qb, vtranspose(kb)), scale);
    blocks.push_back(vmatmul(vsoftmax_rows(scores), vb));
    base += len;
  }
  Var composed = vconcat_rows(blocks);
  vmse_loss(composed, target).backward();

  expect_bitwise_equal(fused.value(), composed.value(), "fused forward");
  expect_bitwise_equal(q1.grad(), q2.grad(), "dq");
  expect_bitwise_equal(k1.grad(), k2.grad(), "dk");
  expect_bitwise_equal(v1.grad(), v2.grad(), "dv");
}

TEST(Trainer, GatherScatterRowsForwardAndGradients) {
  // vgather_rows / vscatter_rows back the sparse MoE routing: forward
  // placement and the scatter-add gradient must be exact.
  Rng rng(22);
  const Tensor xv = Tensor::randn(Shape{5, 3}, rng);
  const std::vector<std::size_t> idx{4, 0, 2};

  Var x = Var::leaf(xv.clone(), true);
  Var gathered = vgather_rows(x, idx);
  ASSERT_EQ(gathered.shape(), (Shape{3, 3}));
  for (std::size_t r = 0; r < idx.size(); ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_EQ(gathered.value().at(r, c), xv.at(idx[r], c));

  Var scattered = vscatter_rows(gathered, idx, 5);
  ASSERT_EQ(scattered.shape(), (Shape{5, 3}));
  for (std::size_t r = 0; r < 5; ++r) {
    const bool routed = r == 0 || r == 2 || r == 4;
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_EQ(scattered.value().at(r, c), routed ? xv.at(r, c) : 0.0f);
  }

  vsum(scattered).backward();
  for (std::size_t r = 0; r < 5; ++r) {
    const bool routed = r == 0 || r == 2 || r == 4;
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_EQ(x.grad().at(r, c), routed ? 1.0f : 0.0f)
          << "row " << r << " col " << c;
  }
}

TEST(KSigma, SmallWindowWarmsUpAndFlags) {
  // Regression: the warm-up gate used to require 8 samples of history even
  // when the window held fewer, so window < 8 could never flag anything.
  std::vector<float> scores;
  for (int i = 0; i < 12; ++i)
    scores.push_back(1.0f + 0.01f * static_cast<float>(i % 3));
  scores.push_back(25.0f);  // unmistakable spike at index 12
  scores.push_back(1.0f);
  const auto flags =
      ksigma_flags(scores, 0, scores.size(), /*window=*/4, /*k_sigma=*/3.0);
  ASSERT_EQ(flags.size(), scores.size());
  EXPECT_EQ(flags[12], 1) << "window-4 threshold never warmed up";
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(flags[i], 0) << "flagged during warm-up at " << i;
}

TEST(KSigma, WideWindowStillWarmsUpAtEight) {
  // With window >= 8 the warm-up stays at 8 samples: a spike at index 5
  // is inside the warm-up and must not flag, one after 8+ samples must.
  std::vector<float> scores(5, 1.0f);
  scores.push_back(25.0f);  // index 5: inside warm-up
  scores.resize(14, 1.0f);
  scores.push_back(100.0f);  // index 14: past warm-up
  const auto flags =
      ksigma_flags(scores, 0, scores.size(), /*window=*/32, /*k_sigma=*/3.0);
  EXPECT_EQ(flags[5], 0);
  EXPECT_EQ(flags[14], 1);
}

class ForcedKTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim_ = new SimDataset(build_sim_dataset(d2_sim_config(0.4, 9)));
  }
  static void TearDownTestSuite() {
    delete sim_;
    sim_ = nullptr;
  }

  static NodeSentryConfig small_config() {
    NodeSentryConfig config;
    config.model.d_model = 12;
    config.model.num_layers = 1;
    config.model.num_heads = 2;
    config.model.ffn_hidden = 16;
    config.train_epochs = 1;
    config.max_tokens_per_segment = 64;
    config.train_window = 32;
    config.match_period = 60;
    config.incremental_updates = false;
    config.seed = 5;
    return config;
  }

  static SimDataset* sim_;
};

SimDataset* ForcedKTest::sim_ = nullptr;

TEST_F(ForcedKTest, ForcedKReportsOwnSilhouetteWithoutSweep) {
  NodeSentry auto_sentry(small_config());
  const auto auto_fit = auto_sentry.fit(sim_->data, sim_->train_end);
  const std::size_t k_auto = auto_sentry.auto_k();
  ASSERT_GE(k_auto, 2u);

  // Forcing the silhouette-optimal k reproduces the same cut, so the
  // reported silhouette must be the same number — but found without the
  // O(n^2 * k_max) sweep, and auto_k() reports 0 (no sweep ran).
  NodeSentryConfig forced = small_config();
  forced.forced_k = k_auto;
  NodeSentry forced_sentry(forced);
  const auto forced_fit = forced_sentry.fit(sim_->data, sim_->train_end);
  EXPECT_EQ(forced_sentry.auto_k(), 0u);
  EXPECT_EQ(forced_fit.num_clusters, k_auto);
  EXPECT_DOUBLE_EQ(forced_fit.silhouette, auto_fit.silhouette);

  // A deliberately suboptimal k reports that cut's own (lower or equal)
  // silhouette instead of echoing the sweep optimum.
  NodeSentryConfig off = small_config();
  off.forced_k = k_auto + 1;
  NodeSentry off_sentry(off);
  const auto off_fit = off_sentry.fit(sim_->data, sim_->train_end);
  EXPECT_EQ(off_sentry.auto_k(), 0u);
  EXPECT_LE(off_fit.silhouette, auto_fit.silhouette + 1e-12);
}

}  // namespace
}  // namespace ns
