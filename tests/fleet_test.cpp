// Sharded fleet serving (DESIGN.md §14): N=1 bitwise parity with the lone
// ServeEngine, multi-shard equivalence on clean data, consistent-hash
// placement stability under fleet growth, fleet-stats merge == sum of
// shard stats, ServeSession config validation, and a concurrent
// ingest/stats-polling race test (run under TSan via the race label).
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/nodesentry.hpp"
#include "serve/engine.hpp"
#include "serve/fleet.hpp"
#include "serve/replay.hpp"
#include "serve/session.hpp"
#include "sim/dataset_builder.hpp"
#include "sim/stream.hpp"

namespace ns {
namespace {

// One fitted detector shared by the whole suite; every test builds its own
// backend on top (serving never mutates the fitted state).
class FleetFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SimDatasetConfig sim_config = d2_sim_config(0.3, 7);
    sim_config.missing_rate = 0.0;  // clean stream -> exact equivalence
    sim_config.anomaly_ratio = 0.01;
    sim_ = new SimDataset(build_sim_dataset(sim_config));
    sentry_ = new NodeSentry(fast_config());
    sentry_->fit(sim_->data, sim_->train_end);
    ServeEngine engine(*sentry_);
    single_ = new ReplayReport(
        serve_replay(engine, sim_->data, sim_->train_end));
  }

  static void TearDownTestSuite() {
    delete single_;
    delete sentry_;
    delete sim_;
    single_ = nullptr;
    sentry_ = nullptr;
    sim_ = nullptr;
  }

  static NodeSentryConfig fast_config() {
    NodeSentryConfig config;
    config.model.d_model = 24;
    config.model.num_layers = 2;
    config.model.num_heads = 2;
    config.model.ffn_hidden = 32;
    config.train_epochs = 2;
    config.learning_rate = 3e-3f;
    config.max_tokens_per_segment = 96;
    config.train_window = 32;
    config.match_period = 60;
    config.threshold_window = 40;
    config.k_max = 6;
    config.seed = 99;
    config.incremental_updates = false;
    return config;
  }

  /// Bitwise comparison: serving is deterministic per node and scoring is
  /// packing-independent, so shard count must not change a single bit.
  static void expect_bitwise_equal(const std::vector<NodeDetection>& a,
                                   const std::vector<NodeDetection>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t n = 0; n < a.size(); ++n) {
      ASSERT_EQ(a[n].scores.size(), b[n].scores.size()) << "node " << n;
      for (std::size_t t = 0; t < a[n].scores.size(); ++t)
        ASSERT_EQ(std::bit_cast<std::uint32_t>(a[n].scores[t]),
                  std::bit_cast<std::uint32_t>(b[n].scores[t]))
            << "node " << n << " t " << t;
      ASSERT_EQ(a[n].predictions.size(), b[n].predictions.size())
          << "node " << n;
      for (std::size_t t = 0; t < a[n].predictions.size(); ++t)
        ASSERT_EQ(a[n].predictions[t], b[n].predictions[t])
            << "node " << n << " t " << t;
    }
  }

  static SimDataset* sim_;
  static NodeSentry* sentry_;
  static ReplayReport* single_;  ///< the lone-ServeEngine reference run
};

SimDataset* FleetFixture::sim_ = nullptr;
NodeSentry* FleetFixture::sentry_ = nullptr;
ReplayReport* FleetFixture::single_ = nullptr;

TEST_F(FleetFixture, OneShardBitwiseIdenticalToServeEngine) {
  FleetConfig config;
  config.shards = 1;
  FleetEngine fleet(*sentry_, config);
  const ReplayReport rep = serve_replay(fleet, sim_->data, sim_->train_end);

  expect_bitwise_equal(rep.result.detections, single_->result.detections);
  EXPECT_EQ(rep.result.timeline_end, single_->result.timeline_end);
  EXPECT_EQ(rep.result.stats.samples_ingested,
            single_->result.stats.samples_ingested);
  EXPECT_EQ(rep.result.stats.points_scored,
            single_->result.stats.points_scored);
  EXPECT_EQ(rep.result.stats.units_dropped, 0u);
}

TEST_F(FleetFixture, MultiShardBitwiseIdenticalToServeEngine) {
  FleetConfig config;
  config.shards = 4;
  FleetEngine fleet(*sentry_, config);
  EXPECT_EQ(fleet.num_shards(), 4u);
  const ReplayReport rep = serve_replay(fleet, sim_->data, sim_->train_end);

  // Every node's samples reach its owner shard in stream order, and
  // scoring is packing-independent: four shards, same bits.
  expect_bitwise_equal(rep.result.detections, single_->result.detections);
  EXPECT_EQ(rep.result.stats.samples_ingested,
            single_->result.stats.samples_ingested);
  EXPECT_EQ(rep.result.stats.segments_opened,
            single_->result.stats.segments_opened);
  EXPECT_EQ(rep.result.stats.points_scored,
            single_->result.stats.points_scored);
}

TEST_F(FleetFixture, TinyRingsStallTheProducerButLoseNothing) {
  FleetConfig config;
  config.shards = 2;
  config.ring_capacity = 2;  // force producer stalls on every burst
  FleetEngine fleet(*sentry_, config);
  const ReplayReport rep = serve_replay(fleet, sim_->data, sim_->train_end);

  // Stalls are allowed (and expected); sample loss is not. A two-slot
  // ring cannot absorb the replay burst, so the backoff ladder must have
  // engaged and been accounted.
  EXPECT_GT(rep.result.stats.ring_stalls, 0u);
  EXPECT_EQ(rep.result.stats.samples_ingested,
            single_->result.stats.samples_ingested);
  expect_bitwise_equal(rep.result.detections, single_->result.detections);
}

TEST_F(FleetFixture, StatsMergeEqualsSumOfShardStats) {
  FleetConfig config;
  config.shards = 3;
  FleetEngine fleet(*sentry_, config);
  const ReplayReport rep = serve_replay(fleet, sim_->data, sim_->train_end);

  ServeStats sum;
  std::size_t max_depth = 0;
  for (std::size_t s = 0; s < fleet.num_shards(); ++s) {
    const ServeStats shard = fleet.shard(s).stats();
    sum.samples_ingested += shard.samples_ingested;
    sum.segments_opened += shard.segments_opened;
    sum.segments_closed += shard.segments_closed;
    sum.chunks_scored += shard.chunks_scored;
    sum.points_scored += shard.points_scored;
    sum.batches_run += shard.batches_run;
    max_depth = std::max(max_depth, shard.max_queue_depth);
  }
  const ServeStats& merged = rep.result.stats;
  EXPECT_EQ(merged.samples_ingested, sum.samples_ingested);
  EXPECT_EQ(merged.segments_opened, sum.segments_opened);
  EXPECT_EQ(merged.segments_closed, sum.segments_closed);
  EXPECT_EQ(merged.chunks_scored, sum.chunks_scored);
  EXPECT_EQ(merged.points_scored, sum.points_scored);
  EXPECT_EQ(merged.batches_run, sum.batches_run);
  EXPECT_EQ(merged.max_queue_depth, max_depth);
  // The merge must also match a live stats() poll taken after finalize.
  const ServeStats live = fleet.stats();
  EXPECT_EQ(live.samples_ingested, merged.samples_ingested);
  EXPECT_EQ(live.points_scored, merged.points_scored);
}

TEST(FleetPlacement, GrowthMovesNodesOnlyToTheNewShard) {
  const std::size_t kNodes = 10000;
  for (std::size_t shards = 1; shards <= 8; ++shards) {
    const ConsistentHashRing before(shards);
    const ConsistentHashRing after(shards + 1);
    std::size_t moved = 0;
    for (std::size_t node = 0; node < kNodes; ++node) {
      const std::size_t a = before.shard_for(node);
      const std::size_t b = after.shard_for(node);
      if (a == b) continue;
      ++moved;
      // Consistent hashing: a node that changes owner can only move to
      // the NEW shard — survivors never trade nodes among themselves.
      EXPECT_EQ(b, shards) << "node " << node << " moved " << a << "->" << b;
    }
    // Expected share is kNodes/(shards+1); allow generous slack for vnode
    // placement variance, but reject wholesale reshuffles.
    EXPECT_LT(moved, kNodes * 3 / (shards + 1))
        << "resharding " << shards << "->" << shards + 1;
    EXPECT_GT(moved, 0u) << "resharding " << shards << "->" << shards + 1;
  }
}

TEST(FleetPlacement, EveryShardOwnsNodes) {
  const std::size_t kNodes = 10000;
  const std::size_t kShards = 8;
  const ConsistentHashRing ring(kShards);
  std::vector<std::size_t> owned(kShards, 0);
  for (std::size_t node = 0; node < kNodes; ++node)
    ++owned[ring.shard_for(node)];
  for (std::size_t s = 0; s < kShards; ++s) {
    // Balance sanity: with 64 vnodes/shard every shard should hold a
    // non-trivial slice (expected 12.5%; accept anything in [2%, 40%]).
    EXPECT_GT(owned[s], kNodes / 50) << "shard " << s;
    EXPECT_LT(owned[s], kNodes * 2 / 5) << "shard " << s;
  }
  // Placement is a pure function: a same-shaped ring agrees everywhere.
  const ConsistentHashRing again(kShards);
  for (std::size_t node = 0; node < 512; ++node)
    ASSERT_EQ(ring.shard_for(node), again.shard_for(node));
}

// Race harness (run under TSan via the race label): one producer streams
// into the rings, four shard workers ingest, a monitor hammers stats().
TEST_F(FleetFixture, ConcurrentIngestAndStatsPollingIsRaceFree) {
  FleetConfig config;
  config.shards = 4;
  config.ring_capacity = 64;  // small ring -> real producer/consumer overlap
  FleetEngine fleet(*sentry_, config);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> polls{0};
  std::thread monitor([&] {
    while (!done.load(std::memory_order_acquire)) {
      const ServeStats stats = fleet.stats();
      EXPECT_LE(stats.samples_dropped_late, stats.samples_ingested);
      polls.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });
  const ReplayReport rep = serve_replay(fleet, sim_->data, sim_->train_end);
  done.store(true, std::memory_order_release);
  monitor.join();

  EXPECT_GT(polls.load(), 0u);
  expect_bitwise_equal(rep.result.detections, single_->result.detections);
}

TEST_F(FleetFixture, SessionRunsAFleetAndMatchesTheSingleEngine) {
  ServeSessionConfig config;
  config.fleet.shards = 2;
  ServeSession session(*sentry_, sim_->data, sim_->train_end, config);
  EXPECT_EQ(session.num_shards(), 2u);
  EXPECT_EQ(session.backend().num_nodes(), sim_->data.num_nodes());
  const ReplayReport rep = session.run();
  expect_bitwise_equal(rep.result.detections, single_->result.detections);
  // Single-model mode: nothing to checkpoint.
  EXPECT_FALSE(session.backend().checkpoint("/nonexistent/never-written"));
}

TEST(FleetSession, ValidateRejectsBrokenConfigs) {
  {
    ServeSessionConfig config;
    config.fleet.shards = 0;
    EXPECT_THROW(config.validate(), Error);
  }
  {
    ServeSessionConfig config;
    config.fleet.ring_capacity = 1;
    EXPECT_THROW(config.validate(), Error);
  }
  {
    ServeSessionConfig config;
    config.generations.enabled = true;
    config.generations.generations = 9;  // lane bitmap is a byte
    EXPECT_THROW(config.validate(), Error);
  }
  {
    ServeSessionConfig config;
    config.generations.enabled = true;
    config.generations.generations = 2;
    config.generations.quorum = 3;  // Q > G
    EXPECT_THROW(config.validate(), Error);
  }
  {
    ServeSessionConfig config;
    config.generations.retrain_every_ms = 50;  // retrainer without lanes
    EXPECT_THROW(config.validate(), Error);
  }
  {
    ServeSessionConfig config;
    config.metrics.every = 100;  // cadence without an output prefix
    EXPECT_THROW(config.validate(), Error);
  }
  {
    ServeSessionConfig config;  // defaults are valid
    EXPECT_NO_THROW(config.validate());
  }
}

TEST_F(FleetFixture, ServedPopulationCanExceedTheFittedOne) {
  // Fleet-scale serving: 3x the fitted node population, profile-mapped
  // onto the fitted standardizers (node mod fitted). The original nodes
  // must still reproduce the reference run bitwise.
  const std::size_t fitted = sim_->data.num_nodes();
  FleetConfig config;
  config.shards = 2;
  config.engine.num_nodes = fitted * 3;
  FleetEngine fleet(*sentry_, config);
  EXPECT_EQ(fleet.num_nodes(), fitted * 3);

  TelemetryReplaySource source(sim_->data, sim_->train_end);
  StreamSample sample;
  std::size_t streamed = 0;
  while (source.next(sample)) {
    StreamSample clone = sample;  // a twin node with the same profile
    clone.node = sample.node + fitted;
    fleet.ingest(sample);
    fleet.ingest(clone);
    streamed += 2;
  }
  const ServeResult result = fleet.finalize();
  EXPECT_EQ(result.stats.samples_ingested, streamed);
  ASSERT_EQ(result.detections.size(), fitted * 3);
  for (std::size_t n = 0; n < fitted; ++n) {
    const NodeDetection& orig = result.detections[n];
    const NodeDetection& ref = single_->result.detections[n];
    ASSERT_GE(orig.scores.size(), ref.scores.size());
    for (std::size_t t = 0; t < ref.scores.size(); ++t)
      ASSERT_EQ(std::bit_cast<std::uint32_t>(orig.scores[t]),
                std::bit_cast<std::uint32_t>(ref.scores[t]))
          << "node " << n << " t " << t;
    // The twin saw the same samples through the same profile: same bits.
    const NodeDetection& twin = result.detections[n + fitted];
    ASSERT_EQ(twin.scores.size(), orig.scores.size());
    for (std::size_t t = 0; t < twin.scores.size(); ++t)
      ASSERT_EQ(std::bit_cast<std::uint32_t>(twin.scores[t]),
                std::bit_cast<std::uint32_t>(orig.scores[t]))
          << "twin of node " << n << " t " << t;
  }
}

}  // namespace
}  // namespace ns
