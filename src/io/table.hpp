// Aligned plain-text table printer for the benchmark harnesses, so bench
// output mirrors the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace ns {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders with column alignment and a separator under the header.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ns
