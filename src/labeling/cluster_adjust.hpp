// Cluster-adjustment workflow of the labeling tool (artifact A2): operators
// inspect automatic clustering results, move segments between clusters,
// merge clusters, and persist the adjusted grouping; centroids are updated
// after every adjustment so the detection pipeline can consume them.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ns {

class ClusterAdjustment {
 public:
  /// Starts from an automatic clustering result: per-segment features and
  /// labels in [0, k).
  ClusterAdjustment(std::vector<std::vector<float>> features,
                    std::vector<std::size_t> labels);

  std::size_t num_segments() const { return features_.size(); }
  std::size_t num_clusters() const;
  const std::vector<std::size_t>& labels() const { return labels_; }

  /// Moves one segment to a (possibly brand-new) cluster.
  void move_segment(std::size_t segment, std::size_t cluster);

  /// Merges cluster `from` into cluster `into`; labels are compacted.
  void merge_clusters(std::size_t from, std::size_t into);

  /// Members of one cluster.
  std::vector<std::size_t> members(std::size_t cluster) const;

  /// Centroid of one cluster (recomputed from current membership).
  std::vector<float> centroid(std::size_t cluster) const;

  /// Number of user adjustments applied so far.
  std::size_t adjustment_count() const { return adjustments_; }

  /// Persists cluster_result.txt (the original automatic labels) and
  /// cluster_adjust.txt (current labels) into `directory`, mirroring the
  /// artifact's config_files layout.
  void save(const std::string& directory) const;

  /// Reloads the adjusted labels from a directory written by save();
  /// features must be supplied by the caller (they are not persisted).
  static std::vector<std::size_t> load_adjusted(const std::string& directory);

 private:
  void compact_labels();

  std::vector<std::vector<float>> features_;
  std::vector<std::size_t> original_labels_;
  std::vector<std::size_t> labels_;
  std::size_t adjustments_ = 0;
};

}  // namespace ns
