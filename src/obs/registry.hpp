// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms with a lock-free (atomic) hot path, designed so that every
// pipeline stage — offline fit, online detect, and the serve engine — can
// record into one shared substrate that the exporters (obs/export.hpp)
// expose as Prometheus text or a JSON snapshot.
//
// Concurrency contract: observe()/inc()/set() are wait-free on the caller
// side (relaxed atomics; the only loop is a CAS retry on the float
// accumulators) and safe from any thread. Registration
// (counter()/gauge()/histogram()) takes a mutex and is meant for setup
// paths; re-registering the same (name, labels) returns the existing
// instance, so instruments can be looked up wherever they are needed.
// Snapshots are taken with relaxed loads: under concurrent writers the
// pieces of a histogram snapshot (count / sum / buckets) may disagree by
// the handful of observations that landed mid-snapshot, which is the usual
// Prometheus scrape semantics; after writers quiesce they agree exactly.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ns::obs {

/// Label key/value pairs, fixed at registration (e.g. {{"stage","ingest"}}).
using LabelSet = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram plus a bounded window of the most recent raw
/// samples. The buckets give cheap cumulative exposition (Prometheus
/// `le`-style); the window gives exact recent quantiles (the serve
/// engine's latency view) without unbounded memory on endless streams.
/// `count()`/`sum()` are cumulative over every observation ever made —
/// they do NOT reset when the window wraps.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing; an implicit +Inf bucket
  /// is appended. `window_capacity` may be 0 to disable the sample window.
  Histogram(std::vector<double> upper_bounds, std::size_t window_capacity);

  void observe(double value) {
    std::size_t b = 0;
    const std::size_t nb = bounds_.size();
    while (b < nb && value > bounds_[b]) ++b;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + value,
                                       std::memory_order_relaxed)) {
    }
    if (window_capacity_ > 0) {
      const std::uint64_t slot =
          window_written_.fetch_add(1, std::memory_order_relaxed);
      window_[slot % window_capacity_].store(static_cast<float>(value),
                                             std::memory_order_relaxed);
    }
  }

  struct Snapshot {
    std::vector<double> upper_bounds;      ///< finite bounds; +Inf implicit
    std::vector<std::uint64_t> buckets;    ///< per-bucket (NOT cumulative)
    std::uint64_t count = 0;               ///< cumulative observations
    double sum = 0.0;                      ///< cumulative sum
    /// Up to window_capacity most recent samples, in no particular order.
    std::vector<float> window;
  };
  Snapshot snapshot() const;

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& upper_bounds() const { return bounds_; }
  std::size_t window_capacity() const { return window_capacity_; }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  ///< size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::size_t window_capacity_ = 0;
  std::unique_ptr<std::atomic<float>[]> window_;
  std::atomic<std::uint64_t> window_written_{0};
};

/// Exponential bucket ladder for sub-second stage latencies
/// (10 µs … 10 s); the serve engine's per-sample/per-batch timings.
std::vector<double> default_latency_buckets();

/// Wider ladder for offline pipeline stages (1 ms … ~1 h); fit-time
/// preprocessing/feature/clustering/training durations.
std::vector<double> default_duration_buckets();

class Registry {
 public:
  Registry();   // out of line: Stored is incomplete here
  ~Registry();  // ditto
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every instrument defaults to.
  static Registry& global();

  /// Finds or creates. Throws ns::InvalidArgument when (name, labels) is
  /// already registered as a different metric kind. `help` and histogram
  /// shape parameters are fixed by the first registration.
  Counter& counter(const std::string& name, const std::string& help,
                   LabelSet labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               LabelSet labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> upper_bounds, LabelSet labels = {},
                       std::size_t window_capacity = 1024);

  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  /// One registered metric, for the exporters. Pointers stay valid for the
  /// registry's lifetime (metrics are never unregistered).
  struct Entry {
    std::string name;
    std::string help;
    LabelSet labels;
    Kind kind = Kind::kCounter;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };

  /// Stable-order (name, then labels) listing of every registered metric.
  std::vector<Entry> entries() const;

  std::size_t size() const;

 private:
  struct Stored;
  Stored* find_locked(const std::string& name, const LabelSet& labels);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Stored>> metrics_;
};

}  // namespace ns::obs
