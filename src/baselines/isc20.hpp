// ISC'20 baseline (Ozer et al.): BGMM clustering of statistical features +
// Mahalanobis-distance scoring. No deep model — the cheapest and, per the
// paper's Table 4, the weakest baseline (coarse window granularity cannot
// localize point anomalies).
#pragma once

#include "baselines/detector.hpp"
#include "cluster/gmm.hpp"

namespace ns {

struct Isc20Config {
  std::size_t max_components = 8;
  std::size_t window = 60;        ///< detection feature window (steps)
  std::size_t stride = 30;        ///< detection hop
  std::size_t em_iterations = 40;
  std::uint64_t seed = 7;
};

class Isc20 : public Detector {
 public:
  explicit Isc20(Isc20Config config = {}) : config_(config) {}
  std::string name() const override { return "ISC 20"; }
  DetectorReport run(const MtsDataset& processed,
                     std::size_t train_end) override;

 private:
  Isc20Config config_;
};

}  // namespace ns
