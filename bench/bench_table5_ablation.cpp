// Reproduces Table 5: ablation study. Variants (paper §4.4):
//   C1 — no coarse-grained clustering (a single shared model)
//   C2 — random segment-to-model assignment (same model count)
//   C3 — fixed-length chopping instead of job-based segmentation
//   C4 — no segment-aware positional encoding
//   C5 — dense FFN instead of the sparse MoE layer
// Pass --extra for additional design-choice ablations flagged in DESIGN.md
// (plain vs trimmed standardization, correlation threshold, HAC linkage).
#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"

int main(int argc, char** argv) {
  using namespace ns;
  using namespace ns::bench;
  const bool extra = argc > 1 && std::strcmp(argv[1], "--extra") == 0;

  std::printf("=== Table 5: ablation study (C1–C5) ===\n");

  struct Variant {
    const char* name;
    std::function<void(NodeSentryConfig&)> tweak;
  };
  std::vector<Variant> variants = {
      {"NodeSentry", [](NodeSentryConfig&) {}},
      {"C1 (single model)",
       [](NodeSentryConfig& c) { c.forced_k = 1; }},
      {"C2 (random assignment)",
       [](NodeSentryConfig& c) { c.random_cluster_assignment = true; }},
      {"C3 (fixed-length segments)",
       [](NodeSentryConfig& c) { c.fixed_length_segmentation = true; }},
      {"C4 (no segment encoding)",
       [](NodeSentryConfig& c) { c.model.use_segment_encoding = false; }},
      {"C5 (dense FFN, no MoE)",
       [](NodeSentryConfig& c) { c.model.use_moe = false; }},
  };
  if (extra) {
    variants.push_back({"extra: no trimmed standardization",
                        [](NodeSentryConfig& c) { c.standardize_trim = 0.0; }});
    variants.push_back({"extra: correlation threshold 0.95",
                        [](NodeSentryConfig& c) {
                          c.correlation_threshold = 0.95;
                        }});
    variants.push_back({"extra: average linkage",
                        [](NodeSentryConfig& c) {
                          c.linkage = Linkage::kAverage;
                        }});
    variants.push_back({"extra: no PCA reduction",
                        [](NodeSentryConfig& c) { c.pca_components = 0; }});
  }

  for (int which = 1; which <= 2; ++which) {
    const SimDataset sim = which == 1 ? make_d1() : make_d2();
    std::printf("\n--- %s ---\n", sim.config.name.c_str());
    TablePrinter table({"Variant", "Precision", "Recall", "AUC", "F1-score"});
    for (const Variant& variant : variants) {
      NodeSentryConfig config = bench_nodesentry_config();
      // The ablation isolates the offline components; online incremental
      // adaptation (§3.5) would otherwise spawn per-segment rescue models
      // and mask a broken variant (notably C2).
      config.incremental_updates = false;
      variant.tweak(config);
      NodeSentry sentry(config);
      sentry.fit(sim.data, sim.train_end);
      const auto det = sentry.detect();
      const auto m = evaluate(sim, det.detections);
      table.add_row({variant.name, format_double(m.precision),
                     format_double(m.recall), format_double(m.auc),
                     format_double(m.f1)});
    }
    std::printf("%s", table.render().c_str());
  }

  std::printf(
      "\npaper reference: D1 F1 — full 0.876, C1 0.301, C2 0.427, C3 0.751, "
      "C4 0.470, C5 0.378; D2 F1 — full 0.891, C1 0.359, C2 0.611, C3 0.780, "
      "C4 0.599, C5 0.504.\nExpected shape: every variant falls below the "
      "full pipeline, with C1 (no clustering) the worst.\n");
  return 0;
}
