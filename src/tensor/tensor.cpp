#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "tensor/kernels.hpp"
#include "tensor/shape_check.hpp"

namespace ns {
namespace {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

}  // namespace

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ',';
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(shape_numel(shape_)),
      storage_(std::make_shared<std::vector<float>>(numel_, 0.0f)) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), numel_(shape_numel(shape_)) {
  NS_REQUIRE(data.size() == numel_,
             "Tensor data size " << data.size() << " != numel for shape "
                                 << shape_to_string(shape_));
  storage_ = std::make_shared<std::vector<float>>(std::move(data));
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& x : t.flat()) x = static_cast<float>(rng.gaussian(0.0, stddev));
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& x : t.flat()) x = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::from_vector(std::vector<float> values) {
  const std::size_t n = values.size();
  return Tensor(Shape{n}, std::move(values));
}

Tensor Tensor::reshape(Shape new_shape) const {
  NS_REQUIRE(shape_numel(new_shape) == numel_,
             "reshape " << shape_to_string(shape_) << " -> "
                        << shape_to_string(new_shape) << " changes numel");
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.numel_ = numel_;
  out.storage_ = storage_;  // share
  return out;
}

Tensor Tensor::clone() const {
  Tensor out;
  out.shape_ = shape_;
  out.numel_ = numel_;
  out.storage_ = std::make_shared<std::vector<float>>(*storage_);
  return out;
}

void Tensor::fill(float value) {
  std::fill(storage_->begin(), storage_->end(), value);
}

// ----------------------------------------------------------------- free ops
// Allocating wrappers over the `_into` kernels in tensor/kernels.cpp. Kept
// for cold paths; hot paths call the kernels against Workspace buffers.

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out;
  add_into(out, a, b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out;
  sub_into(out, a, b);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor out;
  mul_into(out, a, b);
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out;
  scale_into(out, a, s);
  return out;
}

Tensor add_scalar(const Tensor& a, float s) {
  Tensor out;
  add_scalar_into(out, a, s);
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor out;
  matmul_into(out, a, b);
  return out;
}

Tensor transpose2d(const Tensor& a) {
  Tensor out;
  transpose2d_into(out, a);
  return out;
}

Tensor add_rowvec(const Tensor& x, const Tensor& b) {
  Tensor out;
  add_rowvec_into(out, x, b);
  return out;
}

Tensor colwise_scale(const Tensor& x, const Tensor& s) {
  Tensor out;
  colwise_scale_into(out, x, s);
  return out;
}

Tensor softmax_rows(const Tensor& x) {
  Tensor out;
  softmax_rows_into(out, x);
  return out;
}

Tensor slice_cols(const Tensor& x, std::size_t c0, std::size_t c1) {
  check_rank2(x, "slice_cols");
  NS_REQUIRE(c0 < c1 && c1 <= x.size(1),
             "slice_cols range [" << c0 << ',' << c1 << ") out of cols "
                                  << x.size(1));
  const std::size_t rows = x.size(0), cols = x.size(1), w = c1 - c0;
  Tensor out(Shape{rows, w});
  for (std::size_t i = 0; i < rows; ++i)
    std::copy_n(x.data() + i * cols + c0, w, out.data() + i * w);
  return out;
}

Tensor slice_rows(const Tensor& x, std::size_t r0, std::size_t r1) {
  check_rank2(x, "slice_rows");
  NS_REQUIRE(r0 < r1 && r1 <= x.size(0),
             "slice_rows range [" << r0 << ',' << r1 << ") out of rows "
                                  << x.size(0));
  const std::size_t cols = x.size(1);
  Tensor out(Shape{r1 - r0, cols});
  std::copy_n(x.data() + r0 * cols, (r1 - r0) * cols, out.data());
  return out;
}

Tensor concat_cols(std::span<const Tensor> parts) {
  NS_REQUIRE(!parts.empty(), "concat_cols of zero tensors");
  const std::size_t rows = parts[0].size(0);
  std::size_t total_cols = 0;
  for (const Tensor& p : parts) {
    NS_REQUIRE(p.rank() == 2 && p.size(0) == rows,
               "concat_cols: row mismatch");
    total_cols += p.size(1);
  }
  Tensor out(Shape{rows, total_cols});
  std::size_t offset = 0;
  for (const Tensor& p : parts) {
    const std::size_t w = p.size(1);
    for (std::size_t i = 0; i < rows; ++i)
      std::copy_n(p.data() + i * w, w, out.data() + i * total_cols + offset);
    offset += w;
  }
  return out;
}

Tensor concat_rows(std::span<const Tensor> parts) {
  NS_REQUIRE(!parts.empty(), "concat_rows of zero tensors");
  const std::size_t cols = parts[0].size(1);
  std::size_t total_rows = 0;
  for (const Tensor& p : parts) {
    NS_REQUIRE(p.rank() == 2 && p.size(1) == cols,
               "concat_rows: column mismatch");
    total_rows += p.size(0);
  }
  Tensor out(Shape{total_rows, cols});
  std::size_t offset = 0;
  for (const Tensor& p : parts) {
    std::copy_n(p.data(), p.numel(), out.data() + offset);
    offset += p.numel();
  }
  return out;
}

double sum_all(const Tensor& a) {
  double s = 0.0;
  for (float x : a.flat()) s += x;
  return s;
}

double mean_all(const Tensor& a) {
  return a.numel() == 0 ? 0.0 : sum_all(a) / static_cast<double>(a.numel());
}

double max_abs(const Tensor& a) {
  double m = 0.0;
  for (float x : a.flat()) m = std::max(m, std::abs(static_cast<double>(x)));
  return m;
}

}  // namespace ns
