// ChaosBlade-like fault injector (paper Table 1 & §5.1 deployment study).
//
// Faults are planned as (node, interval, type, magnitude) events and applied
// to the node-level semantic signals before metric fan-out; the same events
// define the ground-truth anomaly labels.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/workload.hpp"

namespace ns {

enum class FaultType : std::uint8_t {
  kCpuOverload = 0,       // CPU level (Table 1)
  kMemoryLeak,            // Memory level
  kMemoryExhaustion,      // Memory level
  kDiskFull,              // Disk level
  kNetworkCongestion,     // Network level
  kResourceContention,    // Kernel/OS level
  kCacheThrash,           // CPU level (cache failure analogue)
};
inline constexpr std::size_t kNumFaultTypes = 7;

const char* fault_name(FaultType type);

struct FaultEvent {
  std::size_t node = 0;
  std::size_t begin = 0;  ///< timestamp index
  std::size_t end = 0;    ///< exclusive
  FaultType type = FaultType::kCpuOverload;
  double magnitude = 1.0;  ///< 0..1 severity scale
};

struct FaultPlanConfig {
  std::size_t region_begin = 0;  ///< inject only inside [begin, end)
  std::size_t region_end = 0;
  /// Target fraction of anomalous node-timestamps within the region
  /// (paper D1: 0.16%, D2: 0.04%).
  double target_ratio = 0.0016;
  std::size_t min_duration = 8;
  std::size_t max_duration = 40;
  double min_magnitude = 0.85;
  double max_magnitude = 1.0;
};

/// Plans non-overlapping fault events across `num_nodes` nodes whose total
/// point count approximates target_ratio of the region.
std::vector<FaultEvent> plan_faults(const FaultPlanConfig& config,
                                    std::size_t num_nodes, Rng& rng);

/// Applies one fault to a semantic signal sample. `progress` in [0,1) is the
/// position within the event (used by ramping faults like memory leaks).
/// `running` is the workload archetype the node is supposed to execute:
/// faults drive the node toward the signature of a *different, globally
/// valid* workload state (an "impostor"), so the fault is anomalous only
/// relative to the job context — as with real resource stressors, whose
/// levels jobs legitimately reach. The impostor is chosen to differ from
/// `running` so the fault remains observable.
void apply_fault(std::array<double, kNumSignals>& signals, FaultType type,
                 double progress, double magnitude,
                 WorkloadType running = WorkloadType::kIdle);

/// The impostor signature used by apply_fault (exposed for tests).
std::array<double, kNumSignals> fault_signature(FaultType type,
                                                WorkloadType running);

}  // namespace ns
