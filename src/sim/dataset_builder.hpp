// End-to-end synthetic dataset builder: scheduler + workloads + metric
// fan-out + fault injection -> a labeled MtsDataset (DESIGN.md §2).
//
// Presets d1_sim_config() / d2_sim_config() mirror the papers' D1/D2 at a
// documented scale factor; deployment_sim_config() mirrors the §5.1
// deployment study (mixed-phase LAMMPS-like load + injected faults).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/faults.hpp"
#include "sim/metrics.hpp"
#include "sim/scheduler.hpp"
#include "ts/mts.hpp"

namespace ns {

struct SimDatasetConfig {
  std::string name = "sim";
  std::uint64_t seed = 1;
  SchedulerConfig scheduler;
  MetricCatalogConfig catalog;
  /// Fraction of the timeline reserved for training (paper: first 60%).
  double train_fraction = 0.6;
  /// Faults are injected only into the test region; this is the target
  /// anomalous-point ratio there (paper D1: 0.16%, D2: 0.04%).
  double anomaly_ratio = 0.0016;
  std::size_t fault_min_duration = 8;
  std::size_t fault_max_duration = 40;
  /// Fraction of raw samples dropped (NaN) to exercise cleaning.
  double missing_rate = 0.001;
};

struct SimDataset {
  MtsDataset data;                 ///< raw (pre-preprocessing) dataset
  std::vector<SchedJob> sched_jobs;
  std::vector<FaultEvent> faults;
  std::size_t train_end = 0;       ///< first test timestamp index
  SimDatasetConfig config;
};

/// Builds the full synthetic dataset. Deterministic for a given config.
SimDataset build_sim_dataset(const SimDatasetConfig& config);

/// D1-scaled preset: node/duration counts shrunk by `scale` (1.0 = the
/// bench default, itself ~1/40 of the paper's array; see EXPERIMENTS.md).
SimDatasetConfig d1_sim_config(double scale = 1.0, std::uint64_t seed = 11);
/// D2-scaled preset (smaller array, fewer metrics, lower anomaly ratio).
SimDatasetConfig d2_sim_config(double scale = 1.0, std::uint64_t seed = 22);
/// Deployment-study preset: mixed-phase dominated cluster, higher fault
/// density, for the §5.1 latency/precision bench.
SimDatasetConfig deployment_sim_config(std::uint64_t seed = 33);

}  // namespace ns
