file(REMOVE_RECURSE
  "CMakeFiles/labeling_tool.dir/labeling_tool.cpp.o"
  "CMakeFiles/labeling_tool.dir/labeling_tool.cpp.o.d"
  "labeling_tool"
  "labeling_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labeling_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
