#include "cluster/hac.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "common/error.hpp"

namespace ns {
namespace {

// Lance–Williams coefficients: d(k, i∪j) = ai*d(ki) + aj*d(kj) + b*d(ij)
// + g*|d(ki) - d(kj)|. Ward operates on squared Euclidean distances.
struct LwCoeffs {
  double ai, aj, b, g;
};

LwCoeffs lw_coeffs(Linkage linkage, double ni, double nj, double nk) {
  switch (linkage) {
    case Linkage::kSingle: return {0.5, 0.5, 0.0, -0.5};
    case Linkage::kComplete: return {0.5, 0.5, 0.0, 0.5};
    case Linkage::kAverage:
      return {ni / (ni + nj), nj / (ni + nj), 0.0, 0.0};
    case Linkage::kWard: {
      const double denom = ni + nj + nk;
      return {(ni + nk) / denom, (nj + nk) / denom, -nk / denom, 0.0};
    }
  }
  return {0.5, 0.5, 0.0, 0.0};
}

}  // namespace

Hac::Hac(const std::vector<std::vector<float>>& points, Linkage linkage)
    : n_(points.size()) {
  NS_REQUIRE(n_ >= 1, "HAC needs at least one point");
  const bool squared = (linkage == Linkage::kWard);
  DistanceMatrix dist = DistanceMatrix::build(points, squared);

  // active[i]: current cluster id occupying slot i (or SIZE_MAX when merged
  // away). Slots reuse the distance matrix rows.
  std::vector<bool> alive(n_, true);
  std::vector<double> size(n_, 1.0);
  std::vector<std::size_t> cluster_id(n_);
  std::iota(cluster_id.begin(), cluster_id.end(), 0);

  merges_.reserve(n_ > 0 ? n_ - 1 : 0);
  heights_.reserve(n_ > 0 ? n_ - 1 : 0);

  for (std::size_t step = 0; step + 1 < n_; ++step) {
    // Find the closest alive pair.
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      if (!alive[i]) continue;
      for (std::size_t j = i + 1; j < n_; ++j) {
        if (!alive[j]) continue;
        if (dist.at(i, j) < best) {
          best = dist.at(i, j);
          bi = i;
          bj = j;
        }
      }
    }
    merges_.push_back({cluster_id[bi], cluster_id[bj]});
    heights_.push_back(squared ? std::sqrt(std::max(0.0, best)) : best);

    // Merge bj into bi; update distances via Lance–Williams.
    const double ni = size[bi], nj = size[bj];
    for (std::size_t k = 0; k < n_; ++k) {
      if (!alive[k] || k == bi || k == bj) continue;
      const LwCoeffs c = lw_coeffs(linkage, ni, nj, size[k]);
      const double dki = dist.at(k, bi);
      const double dkj = dist.at(k, bj);
      const double dij = dist.at(bi, bj);
      dist.set(k, bi,
               c.ai * dki + c.aj * dkj + c.b * dij + c.g * std::abs(dki - dkj));
    }
    alive[bj] = false;
    size[bi] = ni + nj;
    cluster_id[bi] = n_ + step;  // dendrogram node id
  }
}

std::vector<std::size_t> Hac::cut(std::size_t k) const {
  NS_REQUIRE(k >= 1 && k <= n_, "cut: k " << k << " out of [1," << n_ << "]");
  // Replay the first n_-k merges through a union-find.
  std::vector<std::size_t> parent(2 * n_);
  std::iota(parent.begin(), parent.end(), 0);
  const std::function<std::size_t(std::size_t)> find =
      [&](std::size_t x) -> std::size_t {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t step = 0; step < n_ - k; ++step) {
    const std::size_t node = n_ + step;
    parent[find(merges_[step].a)] = node;
    parent[find(merges_[step].b)] = node;
  }
  // Compact labels in first-appearance order. A hash map keeps the
  // compaction O(n); a linear scan over the seen roots would make cut()
  // O(n*k), which the silhouette sweep calls k_max times.
  std::vector<std::size_t> labels(n_);
  std::unordered_map<std::size_t, std::size_t> root_label;
  root_label.reserve(k);
  for (std::size_t i = 0; i < n_; ++i) {
    const auto [it, inserted] =
        root_label.try_emplace(find(i), root_label.size());
    labels[i] = it->second;
  }
  NS_CHECK(root_label.size() == k,
           "cut produced " << root_label.size() << " clusters, expected "
                           << k);
  return labels;
}

double silhouette_score(const DistanceMatrix& distances,
                        const std::vector<std::size_t>& labels) {
  const std::size_t n = distances.size();
  NS_REQUIRE(labels.size() == n, "silhouette: label count mismatch");
  if (n == 0) return 0.0;
  const std::size_t k =
      labels.empty() ? 0 : *std::max_element(labels.begin(), labels.end()) + 1;
  if (k < 2) return 0.0;
  std::vector<std::size_t> cluster_size(k, 0);
  for (std::size_t l : labels) cluster_size[l]++;

  double total = 0.0;
  std::vector<double> mean_dist(k);
  for (std::size_t i = 0; i < n; ++i) {
    if (cluster_size[labels[i]] <= 1) continue;  // singleton -> s = 0
    std::fill(mean_dist.begin(), mean_dist.end(), 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      mean_dist[labels[j]] += distances.at(i, j);
    }
    double a = 0.0;
    double b = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      if (cluster_size[c] == 0) continue;
      if (c == labels[i]) {
        a = mean_dist[c] / static_cast<double>(cluster_size[c] - 1);
      } else {
        b = std::min(b, mean_dist[c] / static_cast<double>(cluster_size[c]));
      }
    }
    const double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  return total / static_cast<double>(n);
}

AutoKResult choose_k_by_silhouette(const Hac& hac,
                                   const DistanceMatrix& distances,
                                   std::size_t k_min, std::size_t k_max) {
  NS_REQUIRE(k_min >= 2, "silhouette needs k >= 2");
  k_max = std::min(k_max, hac.num_points());
  NS_REQUIRE(k_min <= k_max, "choose_k: empty k range");
  AutoKResult best;
  best.silhouette = -2.0;
  for (std::size_t k = k_min; k <= k_max; ++k) {
    std::vector<std::size_t> labels = hac.cut(k);
    const double score = silhouette_score(distances, labels);
    if (score > best.silhouette) {
      best.k = k;
      best.silhouette = score;
      best.labels = std::move(labels);
    }
  }
  return best;
}

}  // namespace ns
