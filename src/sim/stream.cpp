#include "sim/stream.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ns {

TelemetryReplaySource::TelemetryReplaySource(const MtsDataset& raw,
                                             std::size_t begin_t,
                                             const ReplayJitterConfig& jitter)
    : raw_(&raw) {
  const std::size_t T = raw.num_timestamps();
  NS_REQUIRE(begin_t <= T, "replay: begin_t out of range");
  const std::size_t N = raw.num_nodes();
  order_.reserve((T - begin_t) * N);
  Rng rng(jitter.seed ^ 0x5EEDF00Dull);
  for (std::size_t t = begin_t; t < T; ++t)
    for (std::size_t n = 0; n < N; ++n) {
      std::size_t release = t;
      if (jitter.max_delay > 0 && jitter.late_probability > 0.0 &&
          rng.bernoulli(jitter.late_probability))
        release += static_cast<std::size_t>(rng.uniform_int(
            1, static_cast<std::int64_t>(jitter.max_delay)));
      order_.push_back(Event{release, n, t});
    }
  // Stable sort keeps the tick-major, node-minor order among samples that
  // share a release tick, so jitter-free replay is the natural collector
  // order.
  std::stable_sort(order_.begin(), order_.end(),
                   [](const Event& a, const Event& b) {
                     return a.release < b.release;
                   });
}

bool TelemetryReplaySource::next(StreamSample& sample) {
  if (cursor_ >= order_.size()) return false;
  const Event& ev = order_[cursor_++];
  sample.node = ev.node;
  sample.t = ev.t;
  // Job occupying the node at t (spans are sorted and non-overlapping).
  sample.job_id = -1;
  const auto& spans = raw_->jobs[ev.node];
  auto it = std::upper_bound(spans.begin(), spans.end(), ev.t,
                             [](std::size_t t, const JobSpan& s) {
                               return t < s.begin;
                             });
  if (it != spans.begin()) {
    const JobSpan& span = *std::prev(it);
    if (ev.t >= span.begin && ev.t < span.end) sample.job_id = span.job_id;
  }
  const std::size_t M = raw_->num_metrics();
  sample.values.resize(M);
  for (std::size_t m = 0; m < M; ++m)
    sample.values[m] = raw_->nodes[ev.node].values[m][ev.t];
  return true;
}

}  // namespace ns
