#include "store/store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <filesystem>

#include "common/error.hpp"
#include "common/fileio.hpp"
#include "common/log.hpp"

namespace ns {

namespace fs = std::filesystem;

// --------------------------------------------------------- mapped segments

/// Read-only view of one segment file. mmap when possible (segment files
/// are designed to be mmap-able: frames are self-delimiting, so a mapping
/// is directly scannable); falls back to a heap read when mmap fails
/// (e.g. an empty file or an exotic filesystem).
struct TimeSeriesStore::SegmentData {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  void* map_base = nullptr;  ///< non-null when mmap'd
  std::vector<std::uint8_t> heap;

  ~SegmentData() {
    if (map_base != nullptr) ::munmap(map_base, size);
  }

  static std::shared_ptr<SegmentData> load(const std::string& path) {
    auto seg = std::make_shared<SegmentData>();
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return seg;  // empty view: treated as zero frames
    struct ::stat st {};
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      const auto size = static_cast<std::size_t>(st.st_size);
      void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      if (base != MAP_FAILED) {
        seg->map_base = base;
        seg->data = static_cast<const std::uint8_t*>(base);
        seg->size = size;
      } else {
        seg->heap.resize(size);
        std::size_t off = 0;
        while (off < size) {
          const ::ssize_t got = ::read(fd, seg->heap.data() + off, size - off);
          if (got <= 0) break;
          off += static_cast<std::size_t>(got);
        }
        seg->heap.resize(off);
        seg->data = seg->heap.data();
        seg->size = seg->heap.size();
      }
    }
    ::close(fd);
    return seg;
  }
};

namespace {

// ------------------------------------------------------------ frame codec

/// Little-endian page frame header (kPageFrameHeaderSize bytes):
///   u32 magic, u32 header_crc (over the 32 bytes after it),
///   u32 payload_crc, u32 payload_bytes, u32 sample_count, u32 num_metrics,
///   u64 first_t, u64 last_t
void put_u32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_u64(std::uint8_t* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

struct FrameInfo {
  std::uint32_t payload_bytes = 0;
  std::uint32_t samples = 0;
  std::uint32_t num_metrics = 0;
  std::uint64_t first_t = 0;
  std::uint64_t last_t = 0;
};

std::array<std::uint8_t, kPageFrameHeaderSize> encode_frame_header(
    const FrameInfo& info, std::uint32_t payload_crc) {
  std::array<std::uint8_t, kPageFrameHeaderSize> h{};
  put_u32(h.data() + 0, kPageFrameMagic);
  put_u32(h.data() + 8, payload_crc);
  put_u32(h.data() + 12, info.payload_bytes);
  put_u32(h.data() + 16, info.samples);
  put_u32(h.data() + 20, info.num_metrics);
  put_u64(h.data() + 24, info.first_t);
  put_u64(h.data() + 32, info.last_t);
  put_u32(h.data() + 4,
          crc32(h.data() + 8, kPageFrameHeaderSize - 8));
  return h;
}

/// Validates the frame at `offset`; false ends the valid prefix.
bool decode_frame_header(const std::uint8_t* data, std::size_t size,
                         std::size_t offset, FrameInfo* out) {
  if (offset + kPageFrameHeaderSize > size) return false;
  const std::uint8_t* h = data + offset;
  if (get_u32(h) != kPageFrameMagic) return false;
  if (get_u32(h + 4) != crc32(h + 8, kPageFrameHeaderSize - 8)) return false;
  out->payload_bytes = get_u32(h + 12);
  out->samples = get_u32(h + 16);
  out->num_metrics = get_u32(h + 20);
  out->first_t = get_u64(h + 24);
  out->last_t = get_u64(h + 32);
  if (out->samples == 0) return false;
  if (offset + kPageFrameHeaderSize + out->payload_bytes > size) return false;
  if (get_u32(h + 8) != crc32(h + kPageFrameHeaderSize, out->payload_bytes))
    return false;
  return true;
}

// ------------------------------------------------------------ index codec

void put_string(std::string& out, const std::string& s) {
  std::uint32_t len = static_cast<std::uint32_t>(s.size());
  out.append(reinterpret_cast<const char*>(&len), 4);
  out.append(s);
}

void put_scalar64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), 8);
}

void put_scalar32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), 4);
}

class IndexParser {
 public:
  explicit IndexParser(const std::string& payload) : payload_(payload) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t v;
    std::memcpy(&v, payload_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v;
    std::memcpy(&v, payload_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    need(len);
    std::string s = payload_.substr(pos_, len);
    pos_ += len;
    return s;
  }

 private:
  void need(std::size_t n) {
    if (pos_ + n > payload_.size())
      throw ParseError("store index: truncated payload");
  }
  const std::string& payload_;
  std::size_t pos_ = 0;
};

std::string index_path(const std::string& dir) {
  return (fs::path(dir) / "index.bin").string();
}

std::string serialize_index(const StoreMeta& meta, const StoreConfig& config) {
  std::string out;
  put_scalar32(out, kStoreIndexVersion);
  put_scalar32(out, static_cast<std::uint32_t>(meta.metrics.size()));
  put_scalar32(out, static_cast<std::uint32_t>(meta.node_names.size()));
  put_scalar64(out, std::bit_cast<std::uint64_t>(meta.interval_seconds));
  put_scalar64(out, config.page_bytes);
  put_scalar64(out, config.segment_pages);
  put_scalar64(out, config.retain_segments);
  for (const MetricMeta& m : meta.metrics) {
    put_string(out, m.name);
    put_string(out, m.semantic_group);
    put_scalar32(out, static_cast<std::uint32_t>(m.category));
    put_scalar32(out, static_cast<std::uint32_t>(m.unit_id));
  }
  for (const std::string& name : meta.node_names) put_string(out, name);
  put_scalar32(out, meta.jobs.empty() ? 0u : 1u);
  if (!meta.jobs.empty()) {
    NS_REQUIRE(meta.jobs.size() == meta.node_names.size(),
               "store: jobs table has " << meta.jobs.size() << " nodes, meta "
                                        << meta.node_names.size());
    for (const std::vector<JobSpan>& spans : meta.jobs) {
      put_scalar32(out, static_cast<std::uint32_t>(spans.size()));
      for (const JobSpan& span : spans) {
        put_scalar64(out, static_cast<std::uint64_t>(span.job_id));
        put_scalar64(out, span.begin);
        put_scalar64(out, span.end);
      }
    }
  }
  return out;
}

void parse_index(const std::string& payload, StoreMeta* meta,
                 StoreConfig* config) {
  IndexParser p(payload);
  const std::uint32_t version = p.u32();
  if (version != kStoreIndexVersion)
    throw ParseError("store index: unsupported version " +
                     std::to_string(version));
  const std::uint32_t num_metrics = p.u32();
  const std::uint32_t num_nodes = p.u32();
  meta->interval_seconds = std::bit_cast<double>(p.u64());
  config->page_bytes = p.u64();
  config->segment_pages = p.u64();
  config->retain_segments = p.u64();
  meta->metrics.resize(num_metrics);
  for (MetricMeta& m : meta->metrics) {
    m.name = p.str();
    m.semantic_group = p.str();
    m.category = static_cast<MetricCategory>(p.u32());
    m.unit_id = static_cast<int>(p.u32());
  }
  meta->node_names.resize(num_nodes);
  for (std::string& name : meta->node_names) name = p.str();
  if (p.u32() != 0) {
    meta->jobs.resize(num_nodes);
    for (std::vector<JobSpan>& spans : meta->jobs) {
      spans.resize(p.u32());
      for (JobSpan& span : spans) {
        span.job_id = static_cast<std::int64_t>(p.u64());
        span.begin = p.u64();
        span.end = p.u64();
      }
    }
  }
}

}  // namespace

// --------------------------------------------------------- TimeSeriesStore

TimeSeriesStore TimeSeriesStore::create(const std::string& directory,
                                        StoreMeta meta, StoreConfig config) {
  NS_REQUIRE(!meta.metrics.empty(), "store: no metrics in meta");
  NS_REQUIRE(!meta.node_names.empty(), "store: no nodes in meta");
  NS_REQUIRE(config.page_bytes >= 64, "store: page_bytes must be >= 64");
  NS_REQUIRE(config.segment_pages > 0, "store: segment_pages must be > 0");
  TimeSeriesStore store;
  store.dir_ = directory;
  store.meta_ = std::move(meta);
  store.config_ = config;
  store.shards_.resize(store.meta_.node_names.size());
  fs::create_directories(directory);
  for (std::size_t n = 0; n < store.shards_.size(); ++n) {
    fs::create_directories(store.node_dir(n));
    // Stale segment files from a superseded store must not leak into the
    // new history.
    for (const auto& entry : fs::directory_iterator(store.node_dir(n)))
      fs::remove(entry.path());
  }
  fs::remove(index_path(directory));
  return store;
}

TimeSeriesStore TimeSeriesStore::open(const std::string& directory) {
  TimeSeriesStore store;
  store.dir_ = directory;
  // The index committed last, so its presence is the commit point; a
  // missing or corrupt index means the store never became visible.
  const std::string payload = read_framed_file(index_path(directory));
  parse_index(payload, &store.meta_, &store.config_);
  store.shards_.resize(store.meta_.node_names.size());
  for (std::size_t n = 0; n < store.shards_.size(); ++n) store.recover_node(n);
  return store;
}

void TimeSeriesStore::recover_node(std::size_t node) {
  Shard& shard = shards_[node];
  std::vector<std::size_t> seqs;
  if (fs::is_directory(node_dir(node))) {
    for (const auto& entry : fs::directory_iterator(node_dir(node))) {
      const std::string name = entry.path().filename().string();
      if (name.size() > 8 && name.rfind("seg_", 0) == 0 &&
          name.substr(name.size() - 4) == ".nss")
        seqs.push_back(static_cast<std::size_t>(
            std::strtoull(name.c_str() + 4, nullptr, 10)));
    }
  }
  std::sort(seqs.begin(), seqs.end());
  for (const std::size_t seq : seqs) {
    const std::shared_ptr<const SegmentData> seg = load_segment(node, seq);
    std::size_t offset = 0;
    FrameInfo info;
    while (decode_frame_header(seg->data, seg->size, offset, &info)) {
      if (info.num_metrics != num_metrics()) break;  // foreign frame
      PageEntry page;
      page.seq = seq;
      page.offset = offset;
      page.payload_bytes = info.payload_bytes;
      page.samples = info.samples;
      page.first_t = info.first_t;
      page.last_t = info.last_t;
      shard.pages.push_back(page);
      shard.any_sealed = true;
      if (!shard.any_t || info.last_t > shard.last_t) {
        shard.last_t = info.last_t;
        shard.any_t = true;
      }
      offset += kPageFrameHeaderSize + info.payload_bytes;
    }
  }
  if (!seqs.empty()) {
    shard.first_seq = seqs.front();
    // Appends resume in a fresh segment: a recovered file may carry a torn
    // tail beyond its valid prefix, and appending after it would orphan
    // the new frames behind the garbage.
    shard.next_seq = seqs.back() + 1;
  }
}

std::string TimeSeriesStore::node_dir(std::size_t node) const {
  return (fs::path(dir_) / ("node_" + std::to_string(node))).string();
}

std::string TimeSeriesStore::segment_path(std::size_t node,
                                          std::size_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg_%06zu.nss", seq);
  return (fs::path(node_dir(node)) / name).string();
}

void TimeSeriesStore::append(std::size_t node, const StoreSample& sample) {
  NS_REQUIRE(node < shards_.size(),
             "store: node " << node << " out of range");
  NS_REQUIRE(sample.values.size() == num_metrics(),
             "store: sample has " << sample.values.size()
                                  << " metrics, store wants "
                                  << num_metrics());
  Shard& shard = shards_[node];
  NS_REQUIRE(!shard.any_t || sample.t > shard.last_t,
             "store: non-increasing tick " << sample.t << " for node "
                                           << node << " (last "
                                           << shard.last_t << ")");
  if (!shard.builder)
    shard.builder =
        std::make_unique<PageBuilder>(num_metrics(), config_.page_bytes);
  if (!shard.builder->append(sample)) {
    seal_page(node);
    NS_CHECK(shard.builder->append(sample),
             "store: sample rejected by a fresh page");
  }
  shard.last_t = sample.t;
  shard.any_t = true;
  ++stats_.samples_appended;
}

void TimeSeriesStore::seal_page(std::size_t node) {
  Shard& shard = shards_[node];
  if (!shard.builder || shard.builder->empty()) return;
  FrameInfo info;
  info.samples = static_cast<std::uint32_t>(shard.builder->samples());
  info.num_metrics = static_cast<std::uint32_t>(num_metrics());
  info.first_t = shard.builder->first_tick();
  info.last_t = shard.builder->last_tick();
  const std::vector<std::uint8_t> payload = shard.builder->finish();
  info.payload_bytes = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t payload_crc = crc32(payload.data(), payload.size());
  const auto header = encode_frame_header(info, payload_crc);

  if (!shard.out) {
    if (shard.pages_in_current == 0) {
      evict_segments(node);
      ++stats_.segments_started;
    }
    shard.out = std::make_unique<std::ofstream>(
        segment_path(node, shard.next_seq),
        std::ios::binary | std::ios::app);
    NS_REQUIRE(shard.out->good(), "store: cannot open segment "
                                      << segment_path(node, shard.next_seq));
  }
  shard.out->write(reinterpret_cast<const char*>(header.data()),
                   static_cast<std::streamsize>(header.size()));
  shard.out->write(reinterpret_cast<const char*>(payload.data()),
                   static_cast<std::streamsize>(payload.size()));
  NS_REQUIRE(shard.out->good(), "store: segment write failed for node "
                                    << node);
  PageEntry page;
  page.seq = shard.next_seq;
  page.offset = shard.current_offset;
  page.payload_bytes = info.payload_bytes;
  page.samples = info.samples;
  page.first_t = info.first_t;
  page.last_t = info.last_t;
  shard.pages.push_back(page);
  shard.any_sealed = true;
  shard.current_offset += kPageFrameHeaderSize + payload.size();
  ++shard.pages_in_current;
  ++stats_.pages_sealed;
  stats_.bytes_written += kPageFrameHeaderSize + payload.size();
  if (shard.pages_in_current >= config_.segment_pages) {
    shard.out->flush();
    shard.out.reset();
    ++shard.next_seq;
    shard.pages_in_current = 0;
    shard.current_offset = 0;
  }
}

void TimeSeriesStore::evict_segments(std::size_t node) {
  if (config_.retain_segments == 0) return;
  Shard& shard = shards_[node];
  // Starting segment next_seq: keep it plus the newest retain_segments - 1.
  while (shard.next_seq - shard.first_seq + 1 > config_.retain_segments) {
    std::error_code ec;
    fs::remove(segment_path(node, shard.first_seq), ec);
    std::erase_if(shard.pages, [&](const PageEntry& p) {
      return p.seq == shard.first_seq;
    });
    read_cache_.erase({node, shard.first_seq});
    ++shard.first_seq;
    ++stats_.segments_evicted;
  }
}

void TimeSeriesStore::flush() {
  for (std::size_t n = 0; n < shards_.size(); ++n) {
    seal_page(n);
    if (shards_[n].out) shards_[n].out->flush();
  }
  // The cache may hold mappings taken before this flush grew the files.
  read_cache_.clear();
  // Index last: segment bytes are on disk before the commit point moves.
  write_framed_file(index_path(dir_), serialize_index(meta_, config_));
}

// ----------------------------------------------------------------- reads

std::shared_ptr<const TimeSeriesStore::SegmentData>
TimeSeriesStore::load_segment(std::size_t node, std::size_t seq) const {
  const auto key = std::make_pair(node, seq);
  auto it = read_cache_.find(key);
  if (it != read_cache_.end()) return it->second;
  std::shared_ptr<const SegmentData> seg =
      SegmentData::load(segment_path(node, seq));
  read_cache_.emplace(key, seg);
  return seg;
}

TimeSeriesStore::Cursor TimeSeriesStore::range(std::size_t node,
                                               std::size_t first_t,
                                               std::size_t end_t) const {
  NS_REQUIRE(node < shards_.size(),
             "store: node " << node << " out of range");
  Cursor cursor;
  cursor.store_ = this;
  cursor.node_ = node;
  cursor.begin_t_ = first_t;
  cursor.end_t_ = end_t;
  const std::vector<PageEntry>& pages = shards_[node].pages;
  // Pages are in (seq, offset) order == tick order; skip whole pages that
  // end before the range.
  std::size_t i = 0;
  while (i < pages.size() && pages[i].last_t < first_t) ++i;
  cursor.page_index_ = i;
  return cursor;
}

bool TimeSeriesStore::Cursor::next(StoreSample& out) {
  if (store_ == nullptr) return false;
  const std::vector<PageEntry>& pages = store_->shards_[node_].pages;
  while (true) {
    if (reader_) {
      StoreSample sample;
      while (reader_->next(sample)) {
        if (sample.t < begin_t_) continue;
        if (sample.t >= end_t_) {
          reader_.reset();
          segment_.reset();
          store_ = nullptr;
          return false;
        }
        out = std::move(sample);
        return true;
      }
      reader_.reset();
      segment_.reset();
    }
    if (page_index_ >= pages.size()) {
      store_ = nullptr;
      return false;
    }
    const PageEntry& page = pages[page_index_++];
    if (page.first_t >= end_t_) {
      store_ = nullptr;
      return false;
    }
    segment_ = store_->load_segment(node_, page.seq);
    NS_REQUIRE(page.offset + kPageFrameHeaderSize + page.payload_bytes <=
                   segment_->size,
               "store: cataloged page beyond segment size (node "
                   << node_ << " seq " << page.seq << ")");
    reader_ = std::make_unique<PageReader>(
        std::span<const std::uint8_t>(
            segment_->data + page.offset + kPageFrameHeaderSize,
            page.payload_bytes),
        store_->num_metrics(), page.samples);
  }
}

std::size_t TimeSeriesStore::node_samples(std::size_t node) const {
  NS_REQUIRE(node < shards_.size(), "store: node out of range");
  std::size_t total = 0;
  for (const PageEntry& page : shards_[node].pages) total += page.samples;
  return total;
}

std::size_t TimeSeriesStore::node_pages(std::size_t node) const {
  NS_REQUIRE(node < shards_.size(), "store: node out of range");
  return shards_[node].pages.size();
}

std::size_t TimeSeriesStore::node_segments(std::size_t node) const {
  NS_REQUIRE(node < shards_.size(), "store: node out of range");
  const Shard& shard = shards_[node];
  if (!shard.any_sealed) return 0;
  std::size_t count = 0;
  std::size_t prev_seq = 0;
  bool any = false;
  for (const PageEntry& page : shard.pages) {
    if (!any || page.seq != prev_seq) {
      ++count;
      prev_seq = page.seq;
      any = true;
    }
  }
  return count;
}

const std::vector<TimeSeriesStore::PageEntry>& TimeSeriesStore::node_catalog(
    std::size_t node) const {
  NS_REQUIRE(node < shards_.size(), "store: node out of range");
  return shards_[node].pages;
}

std::size_t TimeSeriesStore::end_tick() const {
  std::size_t end = 0;
  for (const Shard& shard : shards_)
    if (!shard.pages.empty())
      end = std::max(end,
                     static_cast<std::size_t>(shard.pages.back().last_t) + 1);
  return end;
}

std::size_t TimeSeriesStore::node_first_tick(std::size_t node) const {
  NS_REQUIRE(node < shards_.size(), "store: node out of range");
  const std::vector<PageEntry>& pages = shards_[node].pages;
  return pages.empty() ? 0 : static_cast<std::size_t>(pages.front().first_t);
}

std::uint64_t TimeSeriesStore::sealed_bytes() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_)
    for (const PageEntry& page : shard.pages)
      total += kPageFrameHeaderSize + page.payload_bytes;
  return total;
}

}  // namespace ns
