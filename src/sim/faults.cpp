#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ns {
namespace {

constexpr std::size_t idx(Signal s) { return static_cast<std::size_t>(s); }

// Blends a signal toward `target` with strength w in [0, 1].
void push(std::array<double, kNumSignals>& s, Signal sig, double target,
          double w) {
  double& v = s[idx(sig)];
  v = (1.0 - w) * v + w * target;
}

}  // namespace

const char* fault_name(FaultType type) {
  switch (type) {
    case FaultType::kCpuOverload: return "cpu_overload";
    case FaultType::kMemoryLeak: return "memory_leak";
    case FaultType::kMemoryExhaustion: return "memory_exhaustion";
    case FaultType::kDiskFull: return "disk_full";
    case FaultType::kNetworkCongestion: return "network_congestion";
    case FaultType::kResourceContention: return "resource_contention";
    case FaultType::kCacheThrash: return "cache_thrash";
  }
  return "?";
}

std::vector<FaultEvent> plan_faults(const FaultPlanConfig& config,
                                    std::size_t num_nodes, Rng& rng) {
  NS_REQUIRE(config.region_end > config.region_begin,
             "plan_faults: empty region");
  NS_REQUIRE(config.min_duration >= 1 &&
                 config.max_duration >= config.min_duration,
             "plan_faults: bad duration range");
  const std::size_t region = config.region_end - config.region_begin;
  const double budget_points =
      config.target_ratio * static_cast<double>(region) *
      static_cast<double>(num_nodes);

  std::vector<FaultEvent> events;
  // Track per-node occupied intervals to keep events disjoint.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> busy(num_nodes);
  double spent = 0.0;
  std::size_t attempts = 0;
  while (spent + static_cast<double>(config.min_duration) / 2.0 <
             budget_points &&
         attempts < 10000) {
    ++attempts;
    FaultEvent ev;
    ev.node = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(num_nodes) - 1));
    const std::size_t duration = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(config.min_duration),
        static_cast<std::int64_t>(config.max_duration)));
    if (duration >= region) continue;
    ev.begin = config.region_begin +
               static_cast<std::size_t>(rng.uniform_int(
                   0, static_cast<std::int64_t>(region - duration) - 1));
    ev.end = ev.begin + duration;
    ev.type = static_cast<FaultType>(
        rng.uniform_int(0, static_cast<std::int64_t>(kNumFaultTypes) - 1));
    ev.magnitude = rng.uniform(config.min_magnitude, config.max_magnitude);
    // Reject overlaps (with a small separation margin).
    bool overlaps = false;
    for (const auto& [b, e] : busy[ev.node])
      if (ev.begin < e + 8 && b < ev.end + 8) {
        overlaps = true;
        break;
      }
    if (overlaps) continue;
    busy[ev.node].emplace_back(ev.begin, ev.end);
    spent += static_cast<double>(duration);
    events.push_back(ev);
  }
  // Tiny regions can have a budget below half an event; still emit one so
  // the test set is never anomaly-free.
  if (events.empty() && budget_points > 0.0 &&
      config.min_duration < region) {
    FaultEvent ev;
    ev.node = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(num_nodes) - 1));
    ev.begin = config.region_begin +
               static_cast<std::size_t>(rng.uniform_int(
                   0, static_cast<std::int64_t>(region - config.min_duration) - 1));
    ev.end = ev.begin + config.min_duration;
    ev.type = static_cast<FaultType>(
        rng.uniform_int(0, static_cast<std::int64_t>(kNumFaultTypes) - 1));
    ev.magnitude = rng.uniform(config.min_magnitude, config.max_magnitude);
    events.push_back(ev);
  }
  std::sort(events.begin(), events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.node != b.node ? a.node < b.node : a.begin < b.begin;
            });
  return events;
}

namespace {

// Canonical node-level signatures of the workload archetypes (the phase
// base levels of workload.cpp without job jitter). Faults impersonate one
// of these, so every faulty token vector is a *globally valid* state and
// only the job context reveals the anomaly.
using Sig = std::array<double, kNumSignals>;

Sig base_sig() {
  Sig s;
  s.fill(0.02);
  s[idx(Signal::kDiskUsed)] = 0.4;
  s[idx(Signal::kMemCache)] = 0.2;
  return s;
}

Sig compute_sig() {
  Sig s = base_sig();
  s[idx(Signal::kCpuUser)] = 0.92;
  s[idx(Signal::kLoad)] = 0.85;
  s[idx(Signal::kProcsRunning)] = 0.7;
  s[idx(Signal::kMemUsed)] = 0.45;
  s[idx(Signal::kContextSwitches)] = 0.3;
  return s;
}

Sig memory_sig() {
  Sig s = base_sig();
  s[idx(Signal::kCpuUser)] = 0.4;
  s[idx(Signal::kLoad)] = 0.4;
  s[idx(Signal::kMemUsed)] = 0.85;
  s[idx(Signal::kPageFaults)] = 0.35;
  s[idx(Signal::kMemCache)] = 0.65;
  s[idx(Signal::kProcsRunning)] = 0.3;
  return s;
}

Sig io_sig() {
  Sig s = base_sig();
  s[idx(Signal::kCpuUser)] = 0.2;
  s[idx(Signal::kCpuSystem)] = 0.4;
  s[idx(Signal::kDiskIo)] = 0.7;
  s[idx(Signal::kDiskUsed)] = 0.72;
  s[idx(Signal::kLoad)] = 0.3;
  s[idx(Signal::kProcsRunning)] = 0.2;
  return s;
}

Sig network_sig() {
  Sig s = base_sig();
  s[idx(Signal::kCpuUser)] = 0.42;
  s[idx(Signal::kCpuSystem)] = 0.3;
  s[idx(Signal::kNetRx)] = 0.75;
  s[idx(Signal::kNetTx)] = 0.72;
  s[idx(Signal::kContextSwitches)] = 0.58;
  s[idx(Signal::kLoad)] = 0.5;
  s[idx(Signal::kProcsRunning)] = 0.45;
  return s;
}

Sig idle_sig() {
  Sig s = base_sig();
  s[idx(Signal::kCpuUser)] = 0.03;
  s[idx(Signal::kProcsRunning)] = 0.05;
  return s;
}

WorkloadType signature_type(FaultType fault) {
  switch (fault) {
    case FaultType::kCpuOverload: return WorkloadType::kComputeBound;
    case FaultType::kMemoryLeak: return WorkloadType::kMemoryBound;
    case FaultType::kMemoryExhaustion: return WorkloadType::kMemoryBound;
    case FaultType::kDiskFull: return WorkloadType::kIoBound;
    case FaultType::kNetworkCongestion: return WorkloadType::kComputeBound;
    case FaultType::kResourceContention: return WorkloadType::kNetworkHeavy;
    case FaultType::kCacheThrash: return WorkloadType::kMemoryBound;
  }
  return WorkloadType::kIdle;
}

Sig signature_of(WorkloadType type) {
  switch (type) {
    case WorkloadType::kComputeBound: return compute_sig();
    case WorkloadType::kMemoryBound: return memory_sig();
    case WorkloadType::kIoBound: return io_sig();
    case WorkloadType::kNetworkHeavy: return network_sig();
    case WorkloadType::kMixedPhase: return compute_sig();
    case WorkloadType::kIdle: return idle_sig();
  }
  return idle_sig();
}

// Fallback impostor when the natural one coincides with the running job.
WorkloadType fallback_type(FaultType fault) {
  switch (fault) {
    case FaultType::kCpuOverload: return WorkloadType::kNetworkHeavy;
    case FaultType::kMemoryLeak: return WorkloadType::kIoBound;
    case FaultType::kMemoryExhaustion: return WorkloadType::kIoBound;
    case FaultType::kDiskFull: return WorkloadType::kIdle;
    case FaultType::kNetworkCongestion: return WorkloadType::kIdle;
    case FaultType::kResourceContention: return WorkloadType::kIoBound;
    case FaultType::kCacheThrash: return WorkloadType::kNetworkHeavy;
  }
  return WorkloadType::kIdle;
}

}  // namespace

std::array<double, kNumSignals> fault_signature(FaultType type,
                                                WorkloadType running) {
  WorkloadType impostor = signature_type(type);
  // MixedPhase alternates compute and communication phases, so both the
  // compute and the network signatures are legitimate sub-patterns of it.
  const auto clashes_with = [&](WorkloadType candidate) {
    if (candidate == running) return true;
    return running == WorkloadType::kMixedPhase &&
           (candidate == WorkloadType::kComputeBound ||
            candidate == WorkloadType::kNetworkHeavy);
  };
  if (clashes_with(impostor)) impostor = fallback_type(type);
  if (clashes_with(impostor)) impostor = WorkloadType::kIdle;
  return signature_of(impostor);
}

void apply_fault(std::array<double, kNumSignals>& s, FaultType type,
                 double progress, double magnitude, WorkloadType running) {
  const double w = std::clamp(magnitude, 0.0, 1.0);
  const Sig target = fault_signature(type, running);
  // Memory leaks develop gradually; everything else switches promptly.
  const double ramp = type == FaultType::kMemoryLeak
                          ? std::clamp(progress * 1.4, 0.0, 1.0)
                          : 1.0;
  for (std::size_t i = 0; i < kNumSignals; ++i)
    push(s, static_cast<Signal>(i), target[i], w * ramp);
}

}  // namespace ns
