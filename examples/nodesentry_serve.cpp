// nodesentry_serve — online serving front end: fit (or warm-start from a
// checkpoint), then replay the test region through a ServeBackend (a lone
// ServeEngine, or a sharded FleetEngine with --shards > 1) the way a live
// collector would deliver it, and report streaming statistics. All serving
// flags funnel into one ServeSessionConfig (serve/session.hpp) — the CLI
// only parses, the session wires.
//
//   nodesentry_serve [--data-dir <dir>] [--preset d1|d2|deploy] [--seed N]
//       [--scale F] [--train-fraction F] [--train-end N] [--epochs N]
//       [--checkpoint <dir>] [--restore]
//       [--store-dir <dir>] [--from-store]
//       [--shards N] [--ring-capacity N]
//       [--speedup F] [--threads N] [--batch-tokens N] [--slack N]
//       [--late-prob P] [--max-delay N]
//       [--generations G] [--consensus Q] [--retrain-every MS]
//       [--out-dir <dir>] [--verify] [--incidents-out <file>]
//       [--metrics-out <prefix>] [--metrics-every N] [--trace-out <file>]
//
//   --data-dir      load a CSV dataset instead of simulating one
//   --restore       warm-start from --checkpoint instead of fitting
//   --store-dir     seal every served sample (with its in-band anomaly and
//                   validity bits) into an embedded time-series store at
//                   this directory; the train region is bulk-imported so a
//                   later --from-store run has the full timeline
//   --from-store    rebuild the replay dataset from --store-dir segments
//                   instead of CSV re-reads / simulation (read-only: the
//                   store is not rewritten); pair with --restore for a
//                   fully warm restart
//   --train-end     explicit train/test split tick for --data-dir or
//                   --from-store runs (0 = use --train-fraction)
//   --shards        serve through a FleetEngine with N consistent-hashed
//                   engine shards (1 = the classic single engine)
//   --ring-capacity per-shard SPSC ingest ring capacity (samples)
//   --speedup       pace replay at F x real time (0 = as fast as possible)
//   --strict-replay score through the canonical model forwards (bitwise
//                   identical to batch detect) instead of the default
//                   quantized fast path (DESIGN.md §16). Implied by
//                   --verify, whose equivalence check is a bitwise
//                   contract; detection quality is equivalent either way
//                   (flags can only differ for scores already within
//                   rounding distance of the k-sigma threshold)
//   --verify        also run batch detect() and report the max score delta
//   --metrics-out   write <prefix>.prom (Prometheus text) + <prefix>.json
//                   snapshots of the shared metrics registry (fit stages +
//                   serve ingest/match/score histograms)
//   --metrics-every also refresh the snapshots every N streamed samples
//   --trace-out     JSONL span trace (one line per match/score span)
//   --generations   serve G rolling model generations per cluster through
//                   the generation registry (1..8; default 1)
//   --consensus     flag a point when >= Q of the live generations agree
//                   (default 1; implies consensus scoring when set)
//   --retrain-every run the background retrainer every MS milliseconds
//                   while the replay streams (0 = no retraining); fresh
//                   matched segments feed it, publishes hot-swap in
//   --incidents-out correlate the run's detections into cross-node
//                   incidents (DESIGN.md §15) and write them as JSON;
//                   turns on per-metric residual attribution so each
//                   incident ranks its metrics by WMSE error share
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/nodesentry.hpp"
#include "correlate/incident.hpp"
#include "eval/metrics.hpp"
#include "io/csv.hpp"
#include "io/dataset_io.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "serve/model_registry.hpp"
#include "serve/session.hpp"
#include "sim/dataset_builder.hpp"
#include "store/query.hpp"
#include "store/writer.hpp"
#include "tensor/kernels.hpp"

namespace {

using namespace ns;

const char* arg_value(int argc, char** argv, const char* flag,
                      const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  return fallback;
}

bool arg_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

void print_latency(const char* stage, const LatencySummary& lat) {
  std::printf("  %-8s p50 %7.3f ms   p90 %7.3f ms   p99 %7.3f ms   "
              "max %7.3f ms   (%zu samples)\n",
              stage, lat.p50_ms, lat.p90_ms, lat.p99_ms, lat.max_ms,
              lat.count);
}

}  // namespace

int main(int argc, char** argv) {
  if (arg_flag(argc, argv, "--help") || arg_flag(argc, argv, "-h")) {
    std::fprintf(stderr,
                 "usage: nodesentry_serve [--data-dir DIR] [--preset "
                 "d1|d2|deploy] [--seed N]\n"
                 "  [--scale F] [--train-fraction F] [--train-end N] "
                 "[--epochs N]\n"
                 "  [--checkpoint DIR] [--restore] [--store-dir DIR] "
                 "[--from-store]\n"
                 "  [--shards N] [--ring-capacity N] [--speedup F] "
                 "[--threads N]\n"
                 "  [--batch-tokens N] [--slack N] [--late-prob P] "
                 "[--max-delay N]\n"
                 "  [--generations G] [--consensus Q] [--retrain-every MS]\n"
                 "  [--out-dir DIR] [--strict-replay] [--verify] "
                 "[--incidents-out FILE]\n"
                 "  [--metrics-out PREFIX] [--metrics-every N] "
                 "[--trace-out FILE]\n");
    return 2;
  }

  const char* trace_out = arg_value(argc, argv, "--trace-out", "");
  if (trace_out[0] != '\0') {
    obs::TraceLog::global().open(trace_out);
    std::printf("tracing spans to %s\n", trace_out);
  }

  // ---- Data: rebuild from store segments, load a CSV tree, or simulate
  // one of the paper's datasets.
  MtsDataset dataset;
  std::size_t train_end = 0;
  // job id -> workload archetype, for incident grouping (sim runs only —
  // CSV/store datasets don't carry archetypes).
  std::unordered_map<std::int64_t, std::string> job_archetypes;
  const char* data_dir = arg_value(argc, argv, "--data-dir", "");
  const char* store_dir = arg_value(argc, argv, "--store-dir", "");
  const bool from_store = arg_flag(argc, argv, "--from-store");
  const std::uint64_t seed =
      std::strtoull(arg_value(argc, argv, "--seed", "33"), nullptr, 10);
  const std::size_t train_end_arg = static_cast<std::size_t>(
      std::strtoull(arg_value(argc, argv, "--train-end", "0"), nullptr, 10));
  const double train_fraction =
      std::atof(arg_value(argc, argv, "--train-fraction", "0.6"));
  if (from_store) {
    if (store_dir[0] == '\0') {
      std::fprintf(stderr, "--from-store needs --store-dir <dir>\n");
      return 2;
    }
    // Warm restart path: the segment files are the replay source — no CSV
    // re-read. The rebuilt values are the stored bit patterns, so a
    // subsequent restore + replay reproduces the CSV run's detections.
    const TimeSeriesStore store = TimeSeriesStore::open(store_dir);
    dataset = store_to_dataset(store, 0, store.end_tick());
    train_end = train_end_arg > 0
                    ? train_end_arg
                    : static_cast<std::size_t>(
                          train_fraction *
                          static_cast<double>(dataset.num_timestamps()));
    std::printf("rebuilt dataset from store %s: %zu nodes x %zu metrics x "
                "%zu steps (%.1f KiB sealed; train/test split at %zu)\n",
                store_dir, dataset.num_nodes(), dataset.num_metrics(),
                dataset.num_timestamps(),
                static_cast<double>(store.sealed_bytes()) / 1024.0,
                train_end);
  } else if (data_dir[0] != '\0') {
    dataset = load_dataset(data_dir);
    train_end = train_end_arg > 0
                    ? train_end_arg
                    : static_cast<std::size_t>(
                          train_fraction *
                          static_cast<double>(dataset.num_timestamps()));
  } else {
    const std::string preset = arg_value(argc, argv, "--preset", "deploy");
    const double scale = std::atof(arg_value(argc, argv, "--scale", "1.0"));
    SimDatasetConfig sim_config =
        preset == "d1"   ? d1_sim_config(scale, seed)
        : preset == "d2" ? d2_sim_config(scale, seed)
                         : deployment_sim_config(seed);
    const SimDataset sim = build_sim_dataset(sim_config);
    dataset = sim.data;
    train_end = sim.train_end;
    for (const SchedJob& job : sim.sched_jobs)
      job_archetypes.emplace(job.job_id, workload_name(job.type));
    std::printf("simulated %s: %zu nodes x %zu metrics x %zu steps "
                "(train/test split at %zu)\n",
                preset.c_str(), dataset.num_nodes(), dataset.num_metrics(),
                dataset.num_timestamps(), train_end);
  }

  // ---- Model: fit, or warm-start from a checkpoint written earlier.
  NodeSentryConfig config;
  config.train_epochs = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--epochs", "10")));
  config.learning_rate = 3e-3f;
  config.incremental_updates = false;  // serving never mutates the library
  const char* checkpoint = arg_value(argc, argv, "--checkpoint", "");
  NodeSentry sentry(config);
  if (arg_flag(argc, argv, "--restore")) {
    if (checkpoint[0] == '\0') {
      std::fprintf(stderr, "--restore needs --checkpoint <dir>\n");
      return 2;
    }
    sentry.restore(dataset, train_end, checkpoint);
    std::printf("warm-started %zu clusters from %s\n",
                sentry.library().size(), checkpoint);
  } else {
    NodeSentryConfig fit_config = config;
    fit_config.checkpoint_dir = checkpoint;
    sentry = NodeSentry(fit_config);
    const auto fit = sentry.fit(dataset, train_end);
    std::printf("trained %zu segments -> %zu clusters in %.1f s\n",
                fit.num_segments, fit.num_clusters, fit.total_seconds);
    if (checkpoint[0] != '\0')
      std::printf("checkpointed to %s (restart with --restore)\n",
                  checkpoint);
  }

  // ---- Serve: every serving flag folds into one ServeSessionConfig; the
  // session owns the wiring (backend, generations, retrainer, store).
  ServeSessionConfig session_config;
  session_config.engine.threads = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--threads", "0")));
  session_config.engine.max_batch_tokens = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--batch-tokens", "384")));
  session_config.engine.reorder_slack = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--slack", "8")));
  session_config.fleet.shards = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--shards", "1")));
  session_config.fleet.ring_capacity = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--ring-capacity", "4096")));
  // The deployment default is the quantized fast path; --strict-replay
  // opts back into canonical (bitwise-replayable) forwards, and --verify
  // implies it because its batch-equivalence check is a bitwise contract.
  const bool strict_replay = arg_flag(argc, argv, "--strict-replay") ||
                             arg_flag(argc, argv, "--verify");
  session_config.engine.scoring_path =
      strict_replay ? ScoringPath::kStrict : ScoringPath::kQuantized;
  std::printf("scoring path: %s (kernel tier %s)\n",
              strict_replay ? "strict (canonical kernels)"
                            : "quantized int8 + relaxed kernels",
              kernel_tier_name(kernel_dispatch_tier()));

  const std::size_t generations = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--generations", "1")));
  const std::size_t quorum = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--consensus", "0")));
  const std::size_t retrain_every_ms = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--retrain-every", "0")));
  if (generations > 1 || quorum > 0 || retrain_every_ms > 0) {
    session_config.generations.enabled = true;
    session_config.generations.generations =
        generations > 0 ? generations : 1;
    session_config.generations.quorum = quorum > 0 ? quorum : 1;
    session_config.generations.retrain_every_ms = retrain_every_ms;
    session_config.generations.seed = seed;
    // Generations ride the serve checkpoint flow (DESIGN.md §12 follow-on):
    // a warm start restores the rolling generation sets saved by the
    // previous run instead of re-seeding every lane from the library.
    if (arg_flag(argc, argv, "--restore") && checkpoint[0] != '\0')
      session_config.generations.restore_dir =
          (std::filesystem::path(checkpoint) / "generations").string();
    std::printf("consensus scoring: G=%zu Q=%zu%s\n",
                session_config.generations.generations,
                session_config.generations.quorum,
                retrain_every_ms > 0 ? ", background retrainer on" : "");
  }
  // Embedded store (DESIGN.md §13): seal every served sample with its
  // in-band anomaly/validity bits. --from-store replays read-only.
  if (store_dir[0] != '\0' && !from_store) {
    session_config.store.dir = store_dir;
    std::printf("sealing served samples into %s\n", store_dir);
  }
  session_config.replay.speedup =
      std::atof(arg_value(argc, argv, "--speedup", "0"));
  session_config.replay.jitter.late_probability =
      std::atof(arg_value(argc, argv, "--late-prob", "0"));
  session_config.replay.jitter.max_delay = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--max-delay", "0")));
  session_config.replay.jitter.seed = seed;
  session_config.metrics.out_prefix = arg_value(argc, argv, "--metrics-out", "");
  session_config.metrics.every = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--metrics-every", "0")));
  const char* incidents_out = arg_value(argc, argv, "--incidents-out", "");
  // Incident metric ranking needs the per-metric WMSE split recorded
  // during scoring; attribution is a separate pass, detections stay
  // bitwise identical.
  if (incidents_out[0] != '\0') session_config.engine.attribution = true;

  ServeSession session(sentry, dataset, train_end, session_config);
  if (session.num_shards() > 1)
    std::printf("fleet serving: %zu shards, ring capacity %zu\n",
                session.num_shards(), session_config.fleet.ring_capacity);
  const ReplayReport report = session.run();
  const ServeStats& stats = report.result.stats;

  std::printf("\nstreamed %zu samples in %.2f s (%.0f samples/s)\n",
              report.samples_streamed, report.ingest_seconds,
              report.samples_per_second);
  std::printf("segments: %zu opened, %zu matched, %zu fell back, "
              "%zu insufficient, %zu too short\n",
              stats.segments_opened, stats.segments_matched,
              stats.segments_unmatched, stats.segments_insufficient,
              stats.segments_too_short);
  std::printf("scoring: %zu points in %zu chunks over %zu batched forwards "
              "(%.2f chunks/batch), %zu dropped units, max queue %zu\n",
              stats.points_scored, stats.chunks_scored, stats.batches_run,
              stats.mean_batch_occupancy, stats.units_dropped,
              stats.max_queue_depth);
  if (stats.samples_out_of_order + stats.samples_dropped_late +
          stats.gap_rows_filled >
      0)
    std::printf("stream faults: %zu out-of-order, %zu dropped late, "
                "%zu gap rows filled, %zu cells masked\n",
                stats.samples_out_of_order, stats.samples_dropped_late,
                stats.gap_rows_filled, stats.cells_masked);
  if (stats.ring_stalls > 0)
    std::printf("fleet: %zu producer stalls on full ingest rings\n",
                stats.ring_stalls);
  print_latency("ingest", stats.ingest_latency);
  print_latency("match", stats.match_latency);
  print_latency("score", stats.score_latency);
  if (session_config.generations.enabled)
    std::printf("consensus: %zu points voted, %zu disagreements "
                "(%.2f%% of voted points)\n",
                stats.consensus_points, stats.consensus_disagreements,
                stats.consensus_points > 0
                    ? 100.0 * static_cast<double>(stats.consensus_disagreements) /
                          static_cast<double>(stats.consensus_points)
                    : 0.0);
  if (session.retrainer())
    std::printf("retrainer: %llu cycles run during the replay "
                "(%llu segments offered)\n",
                static_cast<unsigned long long>(session.retrainer()->cycles()),
                static_cast<unsigned long long>(
                    session.retrainer()->segments_offered()));
  if (checkpoint[0] != '\0' && session.save_generations(checkpoint))
    std::printf("generation sets checkpointed to %s/generations\n",
                checkpoint);

  // ---- Seal the store and audit it with the in-band-bit queries.
  if (session.store_writer() != nullptr) {
    StoreWriter* store_writer = session.store_writer();
    store_writer->drain();
    const TimeSeriesStore& store = store_writer->store();
    const AnomalyRateResult rate =
        store_anomaly_rate(store, train_end, store.end_tick());
    std::printf("store: %llu samples sealed (%.1f KiB on disk), serve-region "
                "anomaly rate %.4f, invalid fraction %.4f\n",
                static_cast<unsigned long long>(
                    store.stats().samples_appended),
                static_cast<double>(store.sealed_bytes()) / 1024.0,
                rate.rate(), rate.invalid_fraction());
    for (const NodeAnomalyRate& top : store_top_anomalous_nodes(
             store, 3, train_end, store.end_tick()))
      std::printf("  top: %-12s rate %.4f (%zu/%zu samples)\n",
                  top.node_name.c_str(), top.rate.rate(), top.rate.anomalous,
                  top.rate.samples);
    const StoreDelta store_delta = compare_detections_with_store(
        report.result.detections, store, train_end);
    std::printf("store vs detections: %zu samples compared, %zu flag "
                "mismatches\n",
                store_delta.samples_compared, store_delta.flag_mismatches);
  }

  // The session already refreshed the exposition files after the replay.
  if (!session_config.metrics.out_prefix.empty())
    std::printf("metrics written to %s.prom / %s.json\n",
                session_config.metrics.out_prefix.c_str(),
                session_config.metrics.out_prefix.c_str());

  // ---- Export flagged intervals under the output directory.
  const std::string out_dir =
      arg_value(argc, argv, "--out-dir", "nodesentry_out");
  std::filesystem::create_directories(out_dir);
  const std::string out_csv =
      (std::filesystem::path(out_dir) / "serve_detections.csv").string();
  std::vector<std::vector<std::string>> rows;
  for (std::size_t n = 0; n < report.result.detections.size(); ++n) {
    const auto& pred = report.result.detections[n].predictions;
    std::size_t t = train_end;
    while (t < pred.size()) {
      if (!pred[t]) {
        ++t;
        continue;
      }
      std::size_t end = t;
      while (end < pred.size() && pred[end]) ++end;
      rows.push_back({dataset.nodes[n].node_name, std::to_string(t),
                      std::to_string(end)});
      t = end;
    }
  }
  write_csv(out_csv, {"node", "begin", "end"}, rows);
  std::printf("%zu anomaly intervals written to %s\n", rows.size(),
              out_csv.c_str());

  // ---- Incident correlation (DESIGN.md §15): group co-occurring node
  // anomalies by job/rack into ranked incidents and write them as JSON.
  if (incidents_out[0] != '\0') {
    std::vector<std::string> metric_names;
    metric_names.reserve(sentry.processed().metrics.size());
    for (const MetricMeta& meta : sentry.processed().metrics)
      metric_names.push_back(meta.name);
    IncidentGroupingMeta meta;
    meta.jobs = &dataset.jobs;
    if (!job_archetypes.empty()) meta.job_archetypes = &job_archetypes;
    meta.metric_names = &metric_names;
    const IncidentEngine incidents_engine;
    const IncidentReport incidents =
        incidents_engine.build(report.result, train_end, meta);
    std::printf("\nincidents: %zu from %zu anomaly events on %zu nodes\n",
                incidents.incidents.size(), incidents.anomaly_events,
                incidents.nodes_flagged);
    for (std::size_t i = 0; i < incidents.incidents.size() && i < 5; ++i) {
      const Incident& incident = incidents.incidents[i];
      std::printf("  #%zu %-9s %zu nodes  [%zu,%zu)  severity %.2f%s%s\n",
                  incident.id, incident_scope_name(incident.scope),
                  incident.nodes.size(), incident.begin, incident.end,
                  incident.severity,
                  incident.metrics.empty() ? "" : "  top metric ",
                  incident.metrics.empty()
                      ? ""
                      : incident.metrics.front().name.c_str());
    }
    if (write_incidents_json(incidents, incidents_out))
      std::printf("incident report written to %s\n", incidents_out);
    else
      std::fprintf(stderr, "failed to write %s\n", incidents_out);
  }

  // ---- Optional equivalence check against the batch path.
  if (arg_flag(argc, argv, "--verify")) {
    const auto batch = sentry.detect();
    const DetectionDelta delta =
        compare_detections(report.result.detections, batch.detections);
    std::printf("vs batch detect(): max |score delta| %.3g, "
                "%zu prediction mismatches\n",
                delta.max_abs_score_delta, delta.prediction_mismatches);
  }
  return 0;
}
