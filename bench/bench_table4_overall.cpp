// Reproduces Table 4: overall effectiveness (Precision / Recall / AUC / F1)
// and offline/online cost of NodeSentry vs the four baselines on D1-sim and
// D2-sim. The reproduction target is the *shape*: NodeSentry wins by a wide
// margin, ISC'20 is cheapest-and-worst, RUAD is the most expensive deep
// baseline.
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/examon.hpp"
#include "baselines/isc20.hpp"
#include "baselines/prodigy.hpp"
#include "baselines/ruad.hpp"
#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "ts/preprocess.hpp"

int main() {
  using namespace ns;
  using namespace ns::bench;

  std::printf("=== Table 4: overall anomaly-detection effectiveness ===\n");

  struct PaperRow {
    const char* method;
    double p, r, auc, f1;
    const char* offline;
    const char* online;
  };
  const std::vector<PaperRow> paper_d1 = {
      {"NodeSentry", 0.840, 0.915, 0.964, 0.876, "1.06 day", "2.47 s"},
      {"Prodigy", 0.227, 0.132, 0.571, 0.167, "4.79 day", "9.52 s"},
      {"RUAD", 0.323, 0.306, 0.629, 0.314, "18.94 day", "7.54 s"},
      {"ExaMon", 0.203, 0.217, 0.586, 0.210, "7.95 day", "0.67 s"},
      {"ISC 20", 0.026, 0.154, 0.557, 0.045, "1.64 h", "7.35 s"}};
  const std::vector<PaperRow> paper_d2 = {
      {"NodeSentry", 0.884, 0.897, 0.923, 0.891, "27.21 min", "2.31 s"},
      {"Prodigy", 0.157, 0.271, 0.622, 0.199, "31.44 min", "6.28 s"},
      {"RUAD", 0.403, 0.284, 0.659, 0.333, "6.69 h", "8.46 s"},
      {"ExaMon", 0.407, 0.216, 0.612, 0.282, "3.35 h", "1.09 s"},
      {"ISC 20", 0.006, 0.103, 0.500, 0.012, "2.01 min", "8.81 s"}};

  std::vector<std::vector<std::string>> csv_rows;
  for (int which = 1; which <= 2; ++which) {
    const SimDataset sim = which == 1 ? make_d1() : make_d2();
    std::printf("\n--- %s (%zu nodes, %zu jobs, %zu fault events) ---\n",
                sim.config.name.c_str(), sim.data.num_nodes(),
                sim.sched_jobs.size(), sim.faults.size());
    TablePrinter table({"Method", "Precision", "Recall", "AUC", "F1-score",
                        "Offline", "Online(/node)"});

    // NodeSentry (full pipeline, preprocessing included in offline time).
    {
      NodeSentry sentry(bench_nodesentry_config());
      const auto fit = sentry.fit(sim.data, sim.train_end);
      const auto det = sentry.detect();
      const auto m = evaluate(sim, det.detections);
      table.add_row({"NodeSentry", format_double(m.precision),
                     format_double(m.recall), format_double(m.auc),
                     format_double(m.f1), format_seconds(fit.total_seconds),
                     format_seconds(det.total_seconds /
                                    static_cast<double>(sim.data.num_nodes()))});
      csv_rows.push_back({sim.config.name, "NodeSentry",
                          format_double(m.precision), format_double(m.recall),
                          format_double(m.auc), format_double(m.f1),
                          format_double(fit.total_seconds, 2),
                          format_double(det.total_seconds, 2)});
    }

    // Baselines share the preprocessed dataset; preprocessing time is
    // charged once to each (it is identical work).
    Stopwatch pre_sw;
    const auto pre = preprocess(sim.data, sim.train_end);
    const double pre_seconds = pre_sw.elapsed_s();

    std::vector<std::unique_ptr<Detector>> detectors;
    detectors.push_back(std::make_unique<Prodigy>());
    detectors.push_back(std::make_unique<Ruad>());
    detectors.push_back(std::make_unique<Examon>());
    detectors.push_back(std::make_unique<Isc20>());
    for (auto& detector : detectors) {
      const auto report = detector->run(pre.dataset, sim.train_end);
      const auto m = evaluate(sim, report.detections);
      table.add_row(
          {detector->name(), format_double(m.precision),
           format_double(m.recall), format_double(m.auc), format_double(m.f1),
           format_seconds(pre_seconds + report.train_seconds),
           format_seconds(report.detect_seconds /
                          static_cast<double>(sim.data.num_nodes()))});
      csv_rows.push_back({sim.config.name, detector->name(),
                          format_double(m.precision), format_double(m.recall),
                          format_double(m.auc), format_double(m.f1),
                          format_double(pre_seconds + report.train_seconds, 2),
                          format_double(report.detect_seconds, 2)});
    }
    std::printf("%s", table.render().c_str());

    std::printf("\npaper reference (%s):\n", which == 1 ? "D1" : "D2");
    TablePrinter ref({"Method", "Precision", "Recall", "AUC", "F1-score",
                      "Offline", "Online"});
    for (const PaperRow& row : (which == 1 ? paper_d1 : paper_d2))
      ref.add_row({row.method, format_double(row.p), format_double(row.r),
                   format_double(row.auc), format_double(row.f1), row.offline,
                   row.online});
    std::printf("%s", ref.render().c_str());
  }
  write_csv("bench_table4_results.csv",
            {"dataset", "method", "precision", "recall", "auc", "f1",
             "offline_s", "online_s"},
            csv_rows);
  std::printf("\nresults also written to bench_table4_results.csv\n");
  return 0;
}
