#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace ns {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{2, 3});
  EXPECT_EQ(t.numel(), 6u);
  for (float x : t.flat()) EXPECT_EQ(x, 0.0f);
}

TEST(Tensor, ConstructFromData) {
  Tensor t(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
  EXPECT_THROW(Tensor(Shape{2, 2}, {1, 2, 3}), InvalidArgument);
}

TEST(Tensor, ReshapeSharesStorage) {
  Tensor t(Shape{2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor r = t.reshape(Shape{3, 2});
  r.at(0, 0) = 42.0f;
  EXPECT_EQ(t.at(0, 0), 42.0f);
  EXPECT_THROW(t.reshape(Shape{4, 2}), InvalidArgument);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t(Shape{2}, {1, 2});
  Tensor c = t.clone();
  c.at(0) = 9.0f;
  EXPECT_EQ(t.at(0), 1.0f);
}

TEST(Tensor, RandnHasRoughlyUnitVariance) {
  Rng rng(1);
  Tensor t = Tensor::randn(Shape{10000}, rng);
  double sum = 0.0, sq = 0.0;
  for (float x : t.flat()) {
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / t.numel(), 0.0, 0.05);
  EXPECT_NEAR(sq / t.numel(), 1.0, 0.05);
}

TEST(TensorOps, AddSubMul) {
  Tensor a(Shape{2, 2}, {1, 2, 3, 4});
  Tensor b(Shape{2, 2}, {10, 20, 30, 40});
  EXPECT_EQ(add(a, b).at(1, 1), 44.0f);
  EXPECT_EQ(sub(b, a).at(0, 0), 9.0f);
  EXPECT_EQ(mul(a, b).at(0, 1), 40.0f);
  Tensor c(Shape{3});
  EXPECT_THROW(add(a, c), InvalidArgument);
}

TEST(TensorOps, MatmulKnownValues) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(TensorOps, MatmulShapeErrors) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{2, 3});
  EXPECT_THROW(matmul(a, b), InvalidArgument);
}

TEST(TensorOps, MatmulIdentity) {
  Rng rng(2);
  Tensor a = Tensor::randn(Shape{4, 4}, rng);
  Tensor eye(Shape{4, 4});
  for (std::size_t i = 0; i < 4; ++i) eye.at(i, i) = 1.0f;
  Tensor c = matmul(a, eye);
  for (std::size_t i = 0; i < a.numel(); ++i)
    EXPECT_FLOAT_EQ(c.at(i), a.at(i));
}

TEST(TensorOps, Transpose) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = transpose2d(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.at(0, 1), 4.0f);
  EXPECT_EQ(t.at(2, 0), 3.0f);
  // Double transpose is identity.
  Tensor tt = transpose2d(t);
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_EQ(tt.at(i), a.at(i));
}

TEST(TensorOps, AddRowvec) {
  Tensor x(Shape{2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor b(Shape{3}, {10, 20, 30});
  Tensor y = add_rowvec(x, b);
  EXPECT_EQ(y.at(0, 2), 30.0f);
  EXPECT_EQ(y.at(1, 0), 11.0f);
}

TEST(TensorOps, ColwiseScale) {
  Tensor x(Shape{2, 2}, {1, 2, 3, 4});
  Tensor s(Shape{2}, {10, 100});
  Tensor y = colwise_scale(x, s);
  EXPECT_EQ(y.at(0, 1), 20.0f);
  EXPECT_EQ(y.at(1, 0), 300.0f);
}

TEST(TensorOps, SoftmaxRowsSumToOne) {
  Rng rng(3);
  Tensor x = Tensor::randn(Shape{5, 7}, rng, 3.0f);
  Tensor y = softmax_rows(x);
  for (std::size_t i = 0; i < 5; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < 7; ++j) {
      EXPECT_GT(y.at(i, j), 0.0f);
      row += y.at(i, j);
    }
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

TEST(TensorOps, SoftmaxNumericallyStableForLargeInputs) {
  Tensor x(Shape{1, 3}, {1000.0f, 1000.0f, 1000.0f});
  Tensor y = softmax_rows(x);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(y.at(0, j), 1.0f / 3, 1e-6);
}

TEST(TensorOps, SliceAndConcatRoundTrip) {
  Tensor x(Shape{2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor left = slice_cols(x, 0, 2);
  Tensor right = slice_cols(x, 2, 4);
  const std::vector<Tensor> parts{left, right};
  Tensor back = concat_cols(parts);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(back.at(i), x.at(i));

  Tensor top = slice_rows(x, 0, 1);
  Tensor bottom = slice_rows(x, 1, 2);
  const std::vector<Tensor> rows{top, bottom};
  Tensor back2 = concat_rows(rows);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(back2.at(i), x.at(i));
}

TEST(TensorOps, SliceBoundsChecked) {
  Tensor x(Shape{2, 4});
  EXPECT_THROW(slice_cols(x, 2, 5), InvalidArgument);
  EXPECT_THROW(slice_rows(x, 1, 1), InvalidArgument);
}

TEST(TensorOps, Reductions) {
  Tensor x(Shape{2, 2}, {1, -2, 3, -4});
  EXPECT_DOUBLE_EQ(sum_all(x), -2.0);
  EXPECT_DOUBLE_EQ(mean_all(x), -0.5);
  EXPECT_DOUBLE_EQ(max_abs(x), 4.0);
}

}  // namespace
}  // namespace ns
