// Workload archetypes for the synthetic HPC cluster (DESIGN.md §2).
//
// Each archetype produces the node-level *semantic signals* (CPU, memory,
// disk, network, process activity) of a job over time. Archetypes have
// multiple phases so a single job exhibits distinct sub-patterns
// (Characteristic 3 of the paper); every node running the same job shares
// the job's phase schedule, which yields the cross-node pattern correlation
// of Characteristic 2.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace ns {

/// Node-level semantic signals; raw monitoring metrics are fanned out from
/// these by the MetricGenerator (per-core copies, redundant derivations).
enum class Signal : std::size_t {
  kCpuUser = 0,
  kCpuSystem,
  kLoad,
  kContextSwitches,
  kMemUsed,
  kMemCache,
  kPageFaults,
  kDiskIo,
  kDiskUsed,
  kNetRx,
  kNetTx,
  kProcsRunning,
};
inline constexpr std::size_t kNumSignals = 12;

const char* signal_name(Signal signal);

enum class WorkloadType : std::uint8_t {
  kComputeBound = 0,
  kMemoryBound,
  kIoBound,
  kNetworkHeavy,
  kMixedPhase,  ///< LAMMPS-like alternating compute/communication phases
  kIdle,
};
inline constexpr std::size_t kNumWorkloadTypes = 6;

const char* workload_name(WorkloadType type);

/// One sub-pattern: per-signal base level plus waveform/noise parameters.
struct WorkloadPhase {
  std::array<double, kNumSignals> base{};   ///< mean level per signal
  std::array<double, kNumSignals> slope{};  ///< drift per step (e.g. mem ramp)
  double wave_amplitude = 0.0;  ///< relative sinusoid amplitude
  double wave_period = 120.0;   ///< sinusoid period in steps
  double noise = 0.02;          ///< relative Gaussian noise
};

/// A job's full semantic plan: phase parameters plus the fractional
/// boundaries at which phases switch. All nodes of a job share one plan.
struct WorkloadPlan {
  WorkloadType type = WorkloadType::kIdle;
  std::vector<WorkloadPhase> phases;
  /// Cumulative phase-end fractions in (0, 1]; size == phases.size().
  std::vector<double> phase_ends;
  double wave_phase_shift = 0.0;  ///< job-specific waveform offset
};

/// Builds the plan for a job of the given type. `job_rng` must be seeded
/// identically on every node of the job (derive it from the job id).
WorkloadPlan make_workload_plan(WorkloadType type, Rng& job_rng);

/// Phase index active at fraction `progress` in [0, 1) of the job.
std::size_t phase_at(const WorkloadPlan& plan, double progress);

/// Evaluates the semantic signal vector at step `t` of a job of length
/// `length`. `node_rng` adds small per-node jitter on top of the shared
/// plan. Values are clamped to [0, 1.2] (normalized utilization units).
std::array<double, kNumSignals> evaluate_plan(const WorkloadPlan& plan,
                                              std::size_t t,
                                              std::size_t length,
                                              Rng& node_rng);

}  // namespace ns
