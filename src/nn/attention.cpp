#include "nn/attention.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "tensor/shape_check.hpp"

namespace ns {

Tensor block_diagonal_attention_bias(std::span<const std::size_t> block_lens) {
  std::size_t total = 0;
  for (std::size_t len : block_lens) total += len;
  NS_REQUIRE(total > 0, "attention bias needs at least one token");
  const float neg_inf = -std::numeric_limits<float>::infinity();
  Tensor bias(Shape{total, total});
  for (std::size_t i = 0; i < total * total; ++i) bias.data()[i] = neg_inf;
  std::size_t base = 0;
  for (std::size_t len : block_lens) {
    for (std::size_t i = base; i < base + len; ++i)
      for (std::size_t j = base; j < base + len; ++j) bias.at(i, j) = 0.0f;
    base += len;
  }
  return bias;
}

MultiHeadSelfAttention::MultiHeadSelfAttention(std::size_t dim,
                                               std::size_t heads, Rng& rng)
    : dim_(dim),
      heads_(heads),
      head_dim_(dim / heads),
      out_proj_(dim, dim, rng) {
  NS_REQUIRE(heads > 0 && dim % heads == 0,
             "attention dim " << dim << " not divisible by heads " << heads);
  wq_.reserve(heads);
  wk_.reserve(heads);
  wv_.reserve(heads);
  for (std::size_t h = 0; h < heads; ++h) {
    wq_.push_back(add_parameter(xavier_init(dim, head_dim_, rng)));
    wk_.push_back(add_parameter(xavier_init(dim, head_dim_, rng)));
    wv_.push_back(add_parameter(xavier_init(dim, head_dim_, rng)));
  }
  register_child(&out_proj_);
}

Var MultiHeadSelfAttention::forward_blocked(
    const Var& x, std::span<const std::size_t> block_lens) const {
  if (block_lens.size() <= 1) return forward(x);
  check_cols(x.value(), dim_, "MultiHeadSelfAttention::forward_blocked");
  std::size_t total = 0;
  for (std::size_t len : block_lens) total += len;
  NS_REQUIRE(total == x.shape()[0],
             "attention block lengths sum to "
                 << total << " but input has " << x.shape()[0] << " rows");
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Var> head_outputs;
  head_outputs.reserve(heads_);
  for (std::size_t h = 0; h < heads_; ++h) {
    // Projections run over the whole batch (each output row depends only on
    // its own input row); only the quadratic score stage is per block, fused
    // into a single graph node (bitwise identical to the composed per-block
    // op chain — see vblock_attention).
    Var q = vmatmul(x, wq_[h]);                       // [T, dh]
    Var k = vmatmul(x, wk_[h]);                       // [T, dh]
    Var v = vmatmul(x, wv_[h]);                       // [T, dh]
    head_outputs.push_back(
        vblock_attention(q, k, v, block_lens, inv_sqrt_dh));  // [T, dh]
  }
  Var merged = vconcat_cols(head_outputs);            // [T, dim]
  return out_proj_.forward(merged);
}

Var MultiHeadSelfAttention::forward(const Var& x,
                                    const Tensor* attn_bias) const {
  check_cols(x.value(), dim_, "MultiHeadSelfAttention::forward");
  const std::size_t tokens = x.shape()[0];
  if (attn_bias != nullptr)
    NS_REQUIRE(attn_bias->rank() == 2 && attn_bias->size(0) == tokens &&
                   attn_bias->size(1) == tokens,
               "attention bias must be [" << tokens << "," << tokens << "]");
  const float inv_sqrt_dh =
      1.0f / std::sqrt(static_cast<float>(head_dim_));
  // The dense forward is the one-block case of the fused attention node:
  // the bias (if any) folds into its pre-softmax scores, so there is no
  // separate composed vscale/vadd/vsoftmax chain to maintain.
  const std::size_t one_block[1] = {tokens};
  std::vector<Var> head_outputs;
  head_outputs.reserve(heads_);
  for (std::size_t h = 0; h < heads_; ++h) {
    Var q = vmatmul(x, wq_[h]);                       // [T, dh]
    Var k = vmatmul(x, wk_[h]);                       // [T, dh]
    Var v = vmatmul(x, wv_[h]);                       // [T, dh]
    head_outputs.push_back(
        vblock_attention(q, k, v, one_block, inv_sqrt_dh, attn_bias));
  }
  Var merged = vconcat_cols(head_outputs);            // [T, dim]
  return out_proj_.forward(merged);
}

}  // namespace ns
