// Finite-difference gradient checks for every differentiable op.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "tensor/autograd.hpp"
#include "tensor/tensor.hpp"

namespace ns {
namespace {

// Checks d(loss)/d(leaf) against central finite differences for every
// element of every leaf. `build` must construct a scalar Var from the leaves.
void check_gradients(std::vector<Var>& leaves,
                     const std::function<Var(std::vector<Var>&)>& build,
                     float tol = 2e-2f, float eps = 1e-3f) {
  for (Var& leaf : leaves) leaf.zero_grad();
  Var loss = build(leaves);
  ASSERT_EQ(loss.value().numel(), 1u);
  loss.backward();

  for (std::size_t l = 0; l < leaves.size(); ++l) {
    Var& leaf = leaves[l];
    if (!leaf.requires_grad()) continue;
    const Tensor analytic = leaf.grad().clone();
    for (std::size_t i = 0; i < leaf.value().numel(); ++i) {
      const float saved = leaf.mutable_value().at(i);
      leaf.mutable_value().at(i) = saved + eps;
      const float up = build(leaves).value().at(0);
      leaf.mutable_value().at(i) = saved - eps;
      const float down = build(leaves).value().at(0);
      leaf.mutable_value().at(i) = saved;
      const float numeric = (up - down) / (2.0f * eps);
      const float a = analytic.at(i);
      const float denom = std::max({1.0f, std::abs(a), std::abs(numeric)});
      EXPECT_NEAR(a / denom, numeric / denom, tol)
          << "leaf " << l << " element " << i;
    }
  }
}

std::vector<Var> make_leaves(std::vector<Shape> shapes, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Var> leaves;
  for (auto& s : shapes)
    leaves.push_back(Var::leaf(Tensor::randn(std::move(s), rng), true));
  return leaves;
}

TEST(Autograd, AddGrad) {
  auto leaves = make_leaves({{3, 2}, {3, 2}}, 1);
  check_gradients(leaves, [](std::vector<Var>& v) {
    return vmean(vadd(v[0], v[1]));
  });
}

TEST(Autograd, SubGrad) {
  auto leaves = make_leaves({{2, 3}, {2, 3}}, 2);
  check_gradients(leaves, [](std::vector<Var>& v) {
    return vmean(vmul(vsub(v[0], v[1]), vsub(v[0], v[1])));
  });
}

TEST(Autograd, MulGrad) {
  auto leaves = make_leaves({{4}, {4}}, 3);
  check_gradients(leaves, [](std::vector<Var>& v) {
    return vsum(vmul(v[0], v[1]));
  });
}

TEST(Autograd, ScaleAndAddScalarGrad) {
  auto leaves = make_leaves({{3, 3}}, 4);
  check_gradients(leaves, [](std::vector<Var>& v) {
    return vmean(vadd_scalar(vscale(v[0], 2.5f), 1.0f));
  });
}

TEST(Autograd, MatmulGrad) {
  auto leaves = make_leaves({{3, 4}, {4, 2}}, 5);
  check_gradients(leaves, [](std::vector<Var>& v) {
    return vmean(vmatmul(v[0], v[1]));
  });
}

TEST(Autograd, MatmulChainGrad) {
  auto leaves = make_leaves({{2, 3}, {3, 3}, {3, 2}}, 6);
  check_gradients(leaves, [](std::vector<Var>& v) {
    return vmean(vmatmul(vmatmul(v[0], v[1]), v[2]));
  });
}

TEST(Autograd, TransposeGrad) {
  auto leaves = make_leaves({{2, 5}}, 7);
  check_gradients(leaves, [](std::vector<Var>& v) {
    return vmean(vmatmul(v[0], vtranspose(v[0])));
  });
}

TEST(Autograd, AddRowvecGrad) {
  auto leaves = make_leaves({{4, 3}, {3}}, 8);
  check_gradients(leaves, [](std::vector<Var>& v) {
    Var y = vadd_rowvec(v[0], v[1]);
    return vmean(vmul(y, y));
  });
}

TEST(Autograd, ColwiseScaleGrad) {
  auto leaves = make_leaves({{4, 3}, {4}}, 9);
  check_gradients(leaves, [](std::vector<Var>& v) {
    Var y = vcolwise_scale(v[0], v[1]);
    return vmean(vmul(y, y));
  });
}

TEST(Autograd, SoftmaxGrad) {
  auto leaves = make_leaves({{3, 5}}, 10);
  check_gradients(leaves, [](std::vector<Var>& v) {
    Var y = vsoftmax_rows(v[0]);
    return vmean(vmul(y, y));
  });
}

TEST(Autograd, LayerNormGrad) {
  auto leaves = make_leaves({{4, 6}, {6}, {6}}, 11);
  check_gradients(
      leaves,
      [](std::vector<Var>& v) {
        Var y = vlayernorm_rows(v[0], v[1], v[2]);
        return vmean(vmul(y, y));
      },
      3e-2f);
}

TEST(Autograd, ReluGrad) {
  auto leaves = make_leaves({{5, 5}}, 12);
  // Shift away from 0 to avoid kinks at the finite-difference points.
  for (float& x : leaves[0].mutable_value().flat())
    if (std::abs(x) < 0.05f) x += 0.2f;
  check_gradients(leaves, [](std::vector<Var>& v) {
    return vmean(vrelu(v[0]));
  });
}

TEST(Autograd, GeluGrad) {
  auto leaves = make_leaves({{4, 4}}, 13);
  check_gradients(leaves, [](std::vector<Var>& v) {
    return vmean(vgelu(v[0]));
  });
}

TEST(Autograd, TanhSigmoidExpGrad) {
  auto leaves = make_leaves({{3, 3}}, 14);
  check_gradients(leaves, [](std::vector<Var>& v) {
    return vmean(vtanh(vsigmoid(vexp(vscale(v[0], 0.3f)))));
  });
}

TEST(Autograd, SliceColsGrad) {
  auto leaves = make_leaves({{3, 6}}, 15);
  check_gradients(leaves, [](std::vector<Var>& v) {
    Var y = vslice_cols(v[0], 1, 4);
    return vmean(vmul(y, y));
  });
}

TEST(Autograd, SliceRowsGrad) {
  auto leaves = make_leaves({{6, 3}}, 16);
  check_gradients(leaves, [](std::vector<Var>& v) {
    Var y = vslice_rows(v[0], 2, 5);
    return vmean(vmul(y, y));
  });
}

TEST(Autograd, ConcatColsGrad) {
  auto leaves = make_leaves({{3, 2}, {3, 4}}, 17);
  check_gradients(leaves, [](std::vector<Var>& v) {
    const std::vector<Var> parts{v[0], v[1]};
    Var y = vconcat_cols(parts);
    return vmean(vmul(y, y));
  });
}

TEST(Autograd, ConcatRowsGrad) {
  auto leaves = make_leaves({{2, 3}, {4, 3}}, 18);
  check_gradients(leaves, [](std::vector<Var>& v) {
    const std::vector<Var> parts{v[0], v[1]};
    Var y = vconcat_rows(parts);
    return vmean(vmul(y, y));
  });
}

TEST(Autograd, MaskGrad) {
  auto leaves = make_leaves({{3, 3}}, 19);
  Tensor mask(Shape{3, 3}, {1, 0, 1, 0, 1, 0, 1, 1, 0});
  check_gradients(leaves, [mask](std::vector<Var>& v) {
    return vmean(vmask(v[0], mask));
  });
}

TEST(Autograd, MseLossGrad) {
  auto leaves = make_leaves({{4, 3}}, 20);
  Rng rng(21);
  const Tensor target = Tensor::randn(Shape{4, 3}, rng);
  check_gradients(leaves, [target](std::vector<Var>& v) {
    return vmse_loss(v[0], target);
  });
}

TEST(Autograd, WmseLossGrad) {
  auto leaves = make_leaves({{4, 3}}, 22);
  Rng rng(23);
  const Tensor target = Tensor::randn(Shape{4, 3}, rng);
  Tensor weights(Shape{3}, {0.5f, 2.0f, 1.5f});
  check_gradients(leaves, [target, weights](std::vector<Var>& v) {
    return vwmse_loss(v[0], target, weights);
  });
}

TEST(Autograd, WmseMatchesPaperFormula) {
  // Hand-computed: T=1, M=2, W=(2, 3), pred=(1,1), target=(0,3).
  Var pred = Var::leaf(Tensor(Shape{1, 2}, {1, 1}), true);
  Tensor target(Shape{1, 2}, {0, 3});
  Tensor w(Shape{2}, {2, 3});
  Var loss = vwmse_loss(pred, target, w);
  // (2*1 + 3*4) / 2 = 7
  EXPECT_NEAR(loss.value().at(0), 7.0f, 1e-5);
}

TEST(Autograd, DiamondGraphAccumulatesBothPaths) {
  // loss = mean(x*x + x*x) must give grad 4x/n, not 2x/n.
  Var x = Var::leaf(Tensor(Shape{2}, {1.0f, 2.0f}), true);
  Var a = vmul(x, x);
  Var loss = vmean(vadd(a, a));
  loss.backward();
  EXPECT_NEAR(x.grad().at(0), 4.0f * 1.0f / 2.0f, 1e-5);
  EXPECT_NEAR(x.grad().at(1), 4.0f * 2.0f / 2.0f, 1e-5);
}

TEST(Autograd, GradAccumulatesAcrossBackwardCalls) {
  Var x = Var::leaf(Tensor(Shape{1}, {3.0f}), true);
  for (int i = 0; i < 2; ++i) {
    Var loss = vmul(x, x);
    loss.backward();
  }
  EXPECT_NEAR(x.grad().at(0), 2 * 2.0f * 3.0f, 1e-4);
  x.zero_grad();
  EXPECT_EQ(x.grad().at(0), 0.0f);
}

TEST(Autograd, ConstantsReceiveNoGradient) {
  Var x = Var::leaf(Tensor(Shape{2}, {1, 2}), true);
  Var c = Var::constant(Tensor(Shape{2}, {5, 5}));
  Var loss = vsum(vmul(x, c));
  loss.backward();
  EXPECT_FALSE(c.requires_grad());
  EXPECT_NEAR(x.grad().at(0), 5.0f, 1e-5);
}

TEST(Autograd, DropoutEvalIsIdentity) {
  Rng rng(30);
  Var x = Var::leaf(Tensor(Shape{4, 4}, std::vector<float>(16, 2.0f)), true);
  Var y = vdropout(x, 0.5f, rng, /*training=*/false);
  for (float v : y.value().flat()) EXPECT_EQ(v, 2.0f);
}

TEST(Autograd, DropoutTrainingPreservesExpectation) {
  Rng rng(31);
  Var x = Var::leaf(Tensor(Shape{100, 100}, std::vector<float>(10000, 1.0f)),
                    false);
  Var y = vdropout(x, 0.3f, rng, /*training=*/true);
  EXPECT_NEAR(mean_all(y.value()), 1.0, 0.05);
}

}  // namespace
}  // namespace ns
