#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/mathutil.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "features/extract.hpp"
#include "nn/scoring.hpp"
#include "obs/timer.hpp"
#include "serve/model_registry.hpp"
#include "serve/retrainer.hpp"
#include "store/writer.hpp"
#include "tensor/kernels.hpp"

namespace ns {

namespace {

/// Per-pool-thread scratch for ScoringPlan forwards: buffers survive across
/// tasks, so steady-state scoring allocates nothing per batch.
Workspace& scoring_workspace() {
  thread_local Workspace ws;
  return ws;
}

/// Grows a score/lane timeline to `need` entries, reserving at least `hint`
/// capacity when storage must move so one reservation covers a whole stash
/// flush (or scored batch) instead of reallocating per committed row.
/// Returns whether storage actually moved — the score_reallocs stat.
template <typename T>
bool grow_timeline(std::vector<T>& v, std::size_t need, std::size_t hint,
                   T fill) {
  if (v.size() >= need) return false;
  bool realloced = false;
  if (need > v.capacity()) {
    v.reserve(std::max(std::max(need, hint), v.capacity() * 2));
    realloced = true;
  }
  v.resize(need, fill);
  return realloced;
}

/// Thin view over a shared latency histogram: cumulative count, quantiles
/// over the recent-sample window via one sort (quantiles_from_sorted)
/// instead of the historic copy+sort per percentile.
LatencySummary summarize_histogram(const obs::Histogram& histogram) {
  LatencySummary summary;
  obs::Histogram::Snapshot snap = histogram.snapshot();
  summary.count = snap.count;
  if (snap.window.empty()) return summary;
  std::sort(snap.window.begin(), snap.window.end());
  static constexpr double kQs[] = {0.50, 0.90, 0.99};
  const std::vector<double> qs = quantiles_from_sorted(snap.window, kQs);
  summary.p50_ms = 1e3 * qs[0];
  summary.p90_ms = 1e3 * qs[1];
  summary.p99_ms = 1e3 * qs[2];
  summary.max_ms = 1e3 * snap.window.back();
  return summary;
}

}  // namespace

ServeEngine::ServeEngine(NodeSentry& sentry, const Options& options)
    : ServeEngine(sentry, options.config()) {}

ServeEngine::ServeEngine(NodeSentry& sentry, ServeConfig config)
    : sentry_(&sentry),
      config_(config),
      preproc_(sentry.raw_metrics(), sentry.aggregation_sources(),
               sentry.kept_metrics(), &sentry.standardizer(),
               sentry.config().standardize_clip),
      start_t_(sentry.train_end()) {
  NS_REQUIRE(!sentry.library().empty(), "serve: library has no clusters");
  num_metrics_ = sentry.processed().num_metrics();
  masked_mode_ = !sentry.mask().empty();
  fitted_nodes_ = sentry.processed().num_nodes();
  // Guards the ingest-time profile mapping (sample.node % fitted_nodes_):
  // a zero-node fitted library would divide by zero on the first sample.
  NS_REQUIRE(fitted_nodes_ > 0,
             "serve: fitted dataset has no nodes — no standardization "
             "profile to serve from");
  const std::size_t N =
      config_.num_nodes > 0 ? config_.num_nodes : fitted_nodes_;
  nodes_.resize(N);
  for (NodeState& st : nodes_) {
    st.next_t = start_t_;
    st.last_good.assign(num_metrics_, 0.0f);
  }
  scores_.assign(N, {});
  if (config_.attribution) contrib_.assign(N, {});
  ranges_.assign(N, {});
  // The engine only ever reads the models; eval mode makes every forward
  // deterministic (dropout short-circuits) and therefore order-independent.
  for (ClusterEntry& entry : sentry.mutable_library().clusters())
    if (entry.model) entry.model->set_training(false);
  if (config_.cluster_locks) {
    // Fleet mode: the lock table is shared across every shard engine so a
    // cluster's model never runs two forwards anywhere in the fleet.
    NS_REQUIRE(config_.cluster_locks->size() == sentry.library().size(),
               "serve: shared lock table has "
                   << config_.cluster_locks->size() << " clusters, library "
                   << sentry.library().size());
    cluster_locks_ = config_.cluster_locks;
  } else {
    cluster_locks_ = std::make_shared<ClusterLockTable>(sentry.library().size());
  }
  if (config_.threads > 0) {
    owned_pool_ = std::make_unique<ThreadPool>(config_.threads);
    pool_ = owned_pool_.get();
  } else {
    pool_ = &ThreadPool::global();
  }
  if (config_.store_writer != nullptr) {
    const TimeSeriesStore& store = config_.store_writer->store();
    NS_REQUIRE(store.num_nodes() == N,
               "serve: store has " << store.num_nodes() << " nodes, engine "
                                   << N);
    NS_REQUIRE(store.num_metrics() == sentry.raw_metrics(),
               "serve: store has " << store.num_metrics()
                                   << " metrics, raw space is "
                                   << sentry.raw_metrics());
    retained_.resize(N);
  }
  registry_ = config_.registry ? config_.registry : &obs::Registry::global();
  const std::vector<double> buckets = obs::default_latency_buckets();
  const std::size_t window = std::max<std::size_t>(config_.latency_reservoir, 1);
  const char* kStageHelp = "Serve-path stage latency in seconds";
  ingest_hist_ = &registry_->histogram("ns_serve_stage_seconds", kStageHelp,
                                       buckets, {{"stage", "ingest"}}, window);
  match_hist_ = &registry_->histogram("ns_serve_stage_seconds", kStageHelp,
                                      buckets, {{"stage", "match"}}, window);
  score_hist_ = &registry_->histogram("ns_serve_stage_seconds", kStageHelp,
                                      buckets, {{"stage", "score"}}, window);
  queue_depth_gauge_ = &registry_->gauge(
      "ns_serve_queue_depth", "Scoring units pending dispatch right now");
  units_dropped_counter_ = &registry_->counter(
      "ns_serve_units_dropped_total",
      "Scoring units dropped (oldest-first) by queue backpressure");
  score_reallocs_counter_ = &registry_->counter(
      "ns_serve_score_timeline_reallocs_total",
      "Per-node score/lane timeline storage reallocations");
  // Which kernel tier this host's scoring dispatches to (relaxed/quantized
  // paths; strict scoring always uses the canonical scalar-reproducible
  // kernels regardless of tier).
  registry_
      ->gauge("ns_serve_kernel_tier",
              "Runtime kernel dispatch tier: 0=scalar 1=neon 2=avx2_fma")
      .set(static_cast<double>(static_cast<int>(kernel_dispatch_tier())));
  if (config_.consensus_scoring) {
    const std::size_t G = config_.generations;
    NS_REQUIRE(G >= 1 && G <= 8,
               "serve: generations " << G << " out of [1,8]");
    NS_REQUIRE(config_.consensus_quorum >= 1 && config_.consensus_quorum <= G,
               "serve: consensus_quorum " << config_.consensus_quorum
                                          << " out of [1," << G << "]");
    if (config_.generation_registry != nullptr) {
      gen_registry_ = config_.generation_registry;
      NS_REQUIRE(gen_registry_->num_clusters() == sentry.library().size(),
                 "serve: registry has " << gen_registry_->num_clusters()
                                        << " clusters, library has "
                                        << sentry.library().size());
      NS_REQUIRE(gen_registry_->max_generations() == G,
                 "serve: registry cap " << gen_registry_->max_generations()
                                        << " != generations " << G);
      // Convenience: an external registry handed over empty gets the seed
      // generation, same as the engine-owned path.
      if (gen_registry_->snapshot(0)->generations.empty())
        gen_registry_->seed_from_library(sentry.library());
    } else {
      owned_gen_registry_ = std::make_unique<GenerationRegistry>(
          sentry.library().size(), G, registry_);
      owned_gen_registry_->seed_from_library(sentry.library());
      gen_registry_ = owned_gen_registry_.get();
    }
    lane_scores_.assign(G, std::vector<std::vector<float>>(N));
    lane_active_.assign(N, {});
    consensus_points_counter_ =
        &registry_->counter("ns_serve_consensus_points_total",
                            "Points decided by the consensus vote");
    consensus_disagreements_counter_ = &registry_->counter(
        "ns_serve_consensus_disagreements_total",
        "Voted points where the active generations disagreed");
  }
}

ServeEngine::~ServeEngine() {
  // Never let in-flight tasks outlive the engine they point into.
  for (auto& f : inflight_) {
    try {
      f.get();
    } catch (...) {
      // Destructor must not throw; finalize() is where errors surface.
    }
  }
}

void ServeEngine::ingest(const StreamSample& sample) {
  NS_REQUIRE(!finalized_, "serve: ingest after finalize");
  NS_REQUIRE(sample.node < nodes_.size(),
             "serve: node " << sample.node << " out of range");
  Stopwatch sw;
  NodeState& st = nodes_[sample.node];
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.samples_ingested;
  }
  if (sample.t < st.next_t) {
    // Behind the committed frontier: its tick was already emitted (or gap
    // filled) — replaying it would rewrite scored history.
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.samples_dropped_late;
    return;
  }
  if (st.any_seen && sample.t < st.max_seen) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.samples_out_of_order;
  }
  st.max_seen = st.any_seen ? std::max(st.max_seen, sample.t) : sample.t;
  st.any_seen = true;
  StashedRow stashed;
  // Fleet population: node ids past the fitted count borrow the
  // standardization profile of (id mod fitted count) — identity mapping
  // whenever the served population is the fitted one.
  stashed.row = preproc_.process(sample.node % fitted_nodes_, sample.values);
  stashed.job_id = sample.job_id;
  if (config_.store_writer != nullptr) stashed.raw = sample.values;
  st.stash.insert_or_assign(sample.t, std::move(stashed));
  advance_node(sample.node);
  // Latency excludes any piggybacked pump below (that work is accounted
  // to the score stage); atomic observe, no lock on the hot path.
  ingest_hist_->observe(sw.elapsed_s());
  if (pending_.size() >= config_.pump_watermark) pump();
}

void ServeEngine::advance_node(std::size_t node) {
  NodeState& st = nodes_[node];
  while (true) {
    auto it = st.stash.find(st.next_t);
    if (it != st.stash.end()) {
      const std::int64_t job = it->second.job_id;
      StreamPreprocessor::Row row = std::move(it->second.row);
      std::vector<float> raw = std::move(it->second.raw);
      st.stash.erase(it);
      st.gap_run = 0;
      if (config_.store_writer != nullptr)
        retain_sample(node, st.next_t, job, std::move(raw), row);
      commit_row(node, st.next_t, job, std::move(row));
      ++st.next_t;
      continue;
    }
    // The frontier tick is missing. Once the newest arrival is more than
    // reorder_slack ticks ahead, declare it lost and fill a placeholder so
    // segmentation and scoring keep moving.
    if (st.max_seen > config_.reorder_slack &&
        st.next_t < st.max_seen - config_.reorder_slack) {
      fill_gap_row(node);
      continue;
    }
    break;
  }
}

void ServeEngine::fill_gap_row(std::size_t node) {
  NodeState& st = nodes_[node];
  ++st.gap_run;
  StreamPreprocessor::Row filler;
  filler.values = st.last_good;
  // Short gaps are trusted like the offline interpolation path; runs past
  // max_interpolation_gap are masked instead of fabricated (mirrors the
  // quality guard's policy).
  const std::uint8_t valid =
      st.gap_run <= sentry_->config().quality.max_interpolation_gap ? 1 : 0;
  filler.valid.assign(num_metrics_, valid);
  std::int64_t job = st.pending_job;
  if (st.open)
    job = st.open->job_id;
  else if (!st.stash.empty())
    job = st.stash.begin()->second.job_id;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.gap_rows_filled;
  }
  commit_row(node, st.next_t, job, std::move(filler));
  ++st.next_t;
}

void ServeEngine::retain_sample(std::size_t node, std::size_t t,
                                std::int64_t job_id, std::vector<float> raw,
                                const StreamPreprocessor::Row& row) {
  StoreSample sample;
  sample.t = t;
  sample.job_id = job_id;
  sample.values = std::move(raw);
  // Mirrors commit_row's masking: a cell loses scoring weight when it
  // arrived invalid or non-finite. The in-band bit summarizes the row.
  sample.valid = true;
  for (std::size_t m = 0; m < num_metrics_; ++m) {
    if (!row.valid[m] || !std::isfinite(row.values[m])) {
      sample.valid = false;
      break;
    }
  }
  retained_[node].push_back(std::move(sample));
}

void ServeEngine::commit_row(std::size_t node, std::size_t t,
                             std::int64_t job_id,
                             StreamPreprocessor::Row row) {
  NodeState& st = nodes_[node];
  st.pending_job = job_id;
  std::size_t masked = 0;
  for (std::size_t m = 0; m < num_metrics_; ++m) {
    if (std::isfinite(row.values[m])) {
      if (row.valid[m]) st.last_good[m] = row.values[m];
    } else {
      // The model cannot eat NaN: substitute the last finite processed
      // value (0 before any) and leave the cell masked so it carries no
      // scoring weight.
      row.values[m] = st.last_good[m];
      row.valid[m] = 0;
    }
    // Counts every cell committed without scoring weight: NaN substitutions
    // and gap-filled rows past max_interpolation_gap alike.
    if (!row.valid[m]) ++masked;
  }
  if (masked > 0) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.cells_masked += masked;
  }
  if (!st.open) {
    open_segment(node, t, job_id);
  } else if (job_id != st.open->job_id) {
    close_segment(node, t);
    open_segment(node, t, job_id);
  }
  st.open->rows.push_back(std::move(row.values));
  st.open->valid.push_back(std::move(row.valid));
  // Hint the reservation out to the newest tick seen for this node: one
  // allocation then covers the whole stash flush / gap-fill run that
  // advance_node is in the middle of, instead of growing per row.
  if (grow_timeline(scores_[node], t + 1, std::max(st.max_seen, t) + 1,
                    0.0f)) {
    score_reallocs_counter_->inc();
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.score_reallocs;
  }
  maybe_match(node);
}

void ServeEngine::open_segment(std::size_t node, std::size_t t,
                               std::int64_t job_id) {
  auto seg = std::make_unique<OpenSegment>();
  seg->begin = t;
  seg->job_id = job_id;
  nodes_[node].open = std::move(seg);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.segments_opened;
}

void ServeEngine::maybe_match(std::size_t node) {
  OpenSegment& seg = *nodes_[node].open;
  if (seg.insufficient) return;
  if (!seg.matched) {
    if (seg.rows.size() < sentry_->config().match_period) return;
    match_segment(node);
    if (!seg.matched) return;  // gated as insufficient
  }
  emit_ready_chunks(node, /*closing=*/false, seg.rows.size());
}

void ServeEngine::match_segment(std::size_t node) {
  obs::ScopedTimer timer(match_hist_, "serve.match");
  OpenSegment& seg = *nodes_[node].open;
  const NodeSentryConfig& cfg = sentry_->config();
  const std::size_t win = std::min(seg.rows.size(), cfg.match_period);
  const std::size_t M = num_metrics_;
  if (masked_mode_) {
    // Streaming counterpart of detect()'s data-quality gate, evaluated on
    // the matching window (the future of the segment is not visible yet).
    std::size_t valid_cells = 0;
    for (std::size_t r = 0; r < win; ++r)
      for (std::size_t m = 0; m < M; ++m) valid_cells += seg.valid[r][m];
    const double vf = static_cast<double>(valid_cells) /
                      static_cast<double>(win * M);
    if (vf < cfg.quality.min_segment_valid_fraction) {
      seg.insufficient = true;
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.segments_insufficient;
      return;
    }
  }
  std::vector<std::vector<float>> values(M, std::vector<float>(win));
  for (std::size_t r = 0; r < win; ++r)
    for (std::size_t m = 0; m < M; ++m) values[m][r] = seg.rows[r][m];
  const std::vector<float> raw_feats = extract_segment_features(values);
  std::vector<std::uint8_t> feature_valid;
  if (masked_mode_) {
    const std::size_t fpm = features_per_metric();
    for (std::size_t m = 0; m < M; ++m) {
      std::size_t ok = 0;
      for (std::size_t r = 0; r < win; ++r) ok += seg.valid[r][m];
      const bool alive = static_cast<double>(ok) / static_cast<double>(win) >=
                         cfg.quality.min_metric_valid_fraction;
      if (!alive && feature_valid.empty()) feature_valid.assign(M * fpm, 1);
      if (!alive)
        std::fill(
            feature_valid.begin() + static_cast<std::ptrdiff_t>(m * fpm),
            feature_valid.begin() + static_cast<std::ptrdiff_t>((m + 1) * fpm),
            static_cast<std::uint8_t>(0));
    }
  }
  const ClusterLibrary& library = sentry_->library();
  const std::vector<float> feats =
      feature_valid.empty() ? library.scale(raw_feats)
                            : library.scale_masked(raw_feats, feature_valid);
  const MatchResult match =
      library.match(feats, cfg.match_threshold_factor);
  // Unmatched patterns fall back to the nearest cluster — the serve engine
  // runs without incremental updates (spawning/fine-tuning models belongs
  // to an offline maintenance pass), matching batch detect() with
  // config.incremental_updates off.
  seg.cluster = match.cluster;
  seg.segment_id = library.nearest_member(match.cluster, feats);
  seg.center_mu.assign(M, 0.0f);
  if (cfg.center_tokens) {
    // Same arithmetic as center_tokens_leading: double accumulation over
    // the leading window, subtracted as float.
    for (std::size_t m = 0; m < M; ++m) {
      double mu = 0.0;
      for (std::size_t r = 0; r < win; ++r) mu += seg.rows[r][m];
      mu /= static_cast<double>(win);
      seg.center_mu[m] = static_cast<float>(mu);
    }
  }
  seg.matched = true;
  std::lock_guard<std::mutex> lock(stats_mutex_);
  if (match.matched)
    ++stats_.segments_matched;
  else
    ++stats_.segments_unmatched;
}

void ServeEngine::emit_ready_chunks(std::size_t node, bool closing,
                                    std::size_t len) {
  OpenSegment& seg = *nodes_[node].open;
  if (!seg.matched || seg.insufficient) return;
  const std::size_t chunk = sentry_->config().detect_chunk;
  const std::size_t M = num_metrics_;
  while (seg.next_chunk_start < len) {
    const std::size_t start = seg.next_chunk_start;
    const std::size_t full_stop = start + chunk;
    std::size_t stop;
    if (closing) {
      stop = std::min(len, full_stop);
      if (stop - start < 2) break;  // mirrors batch detect()'s tail break
    } else {
      if (full_stop > len) break;  // wait until a full chunk has settled
      stop = full_stop;
    }
    PendingUnit unit;
    unit.cluster = seg.cluster;
    unit.node = node;
    unit.abs_begin = seg.begin + start;
    unit.offset = start;
    unit.segment_id = seg.segment_id;
    unit.tokens = Tensor(Shape{stop - start, M});
    for (std::size_t r = start; r < stop; ++r)
      for (std::size_t m = 0; m < M; ++m)
        unit.tokens.at(r - start, m) = seg.rows[r][m] - seg.center_mu[m];
    if (masked_mode_) {
      unit.valid.resize((stop - start) * M);
      for (std::size_t r = start; r < stop; ++r)
        for (std::size_t m = 0; m < M; ++m)
          unit.valid[(r - start) * M + m] = seg.valid[r][m];
    }
    seg.next_chunk_start = stop;
    enqueue_unit(std::move(unit));
  }
}

void ServeEngine::enqueue_unit(PendingUnit unit) {
  pending_.push_back(std::move(unit));
  std::size_t dropped = 0;
  while (config_.max_pending_units > 0 &&
         pending_.size() > config_.max_pending_units) {
    // Drop-oldest: stale scores are worth less than stalling ingest, and
    // unscored points simply keep score 0 (like insufficient-data points).
    pending_.pop_front();
    ++dropped;
  }
  if (dropped > 0) units_dropped_counter_->inc(dropped);
  queue_depth_gauge_->set(static_cast<double>(pending_.size()));
  // Publish the depth into the stats block: pending_ itself belongs to the
  // ingest thread, so a monitor polling stats() must read this copy.
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.units_dropped += dropped;
  stats_.queue_depth = pending_.size();
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, pending_.size());
}

std::size_t ServeEngine::pump() {
  if (pending_.empty()) return 0;
  std::map<std::size_t, std::vector<PendingUnit>> by_cluster;
  while (!pending_.empty()) {
    PendingUnit unit = std::move(pending_.front());
    pending_.pop_front();
    by_cluster[unit.cluster].push_back(std::move(unit));
  }
  std::size_t dispatched = 0;
  for (auto& [cluster, units] : by_cluster) {
    dispatched += units.size();
    inflight_.push_back(pool_->submit(
        [this, cluster, batch = std::move(units)]() mutable {
          if (config_.consensus_scoring)
            score_cluster_units_consensus(cluster, std::move(batch));
          else
            score_cluster_units(cluster, std::move(batch));
        }));
  }
  // Reap finished futures so inflight_ stays bounded on long streams; a
  // task exception surfaces here (or in finalize()).
  std::erase_if(inflight_, [](std::future<void>& f) {
    if (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready)
      return false;
    f.get();
    return true;
  });
  drain_scored();
  queue_depth_gauge_->set(0.0);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.queue_depth = 0;
  }
  return dispatched;
}

std::shared_ptr<const ScoringPlan> ServeEngine::plan_for(
    const std::shared_ptr<TransformerReconstructor>& model,
    const QuantCalibration* calibration) {
  {
    std::lock_guard<std::mutex> lock(plans_mutex_);
    auto it = plans_.find(model.get());
    if (it != plans_.end()) {
      if (!it->second.alive.expired()) return it->second.plan;
      plans_.erase(it);  // the old model at this address is gone
    }
  }
  // Compile outside the lock: plan construction (and lazy calibration) is
  // the expensive part, and concurrent compiles of the same model are
  // idempotent — last writer wins, both plans are correct.
  std::shared_ptr<const ScoringPlan> plan;
  if (config_.scoring_path == ScoringPath::kQuantized) {
    if (calibration != nullptr) {
      plan = std::make_shared<const ScoringPlan>(*model, calibration);
    } else {
      const QuantCalibration local = calibrate_quantization(*model);
      plan = std::make_shared<const ScoringPlan>(*model, &local);
    }
  } else {
    plan = std::make_shared<const ScoringPlan>(*model);
  }
  std::lock_guard<std::mutex> lock(plans_mutex_);
  plans_[model.get()] = PlanCacheEntry{model, plan};
  return plan;
}

void ServeEngine::score_cluster_units(std::size_t cluster,
                                      std::vector<PendingUnit> units) {
  const ClusterEntry& entry = sentry_->library().clusters()[cluster];
  std::shared_ptr<const ScoringPlan> plan;
  if (config_.scoring_path != ScoringPath::kStrict)
    plan = plan_for(entry.model, nullptr);
  std::lock_guard<std::mutex> cluster_lock(cluster_locks_->lock(cluster));
  Rng rng(0);  // eval-mode forwards are deterministic and never draw
  const std::size_t M = num_metrics_;
  std::size_t i = 0;
  while (i < units.size()) {
    // Pack units into one batched forward up to max_batch_tokens rows. A
    // single oversized unit still goes alone (it cannot be split: its
    // attention window is the chunk).
    std::size_t j = i + 1;
    std::size_t rows = units[i].tokens.size(0);
    if (config_.max_batch_tokens > 0) {
      while (j < units.size() &&
             rows + units[j].tokens.size(0) <= config_.max_batch_tokens) {
        rows += units[j].tokens.size(0);
        ++j;
      }
    }
    obs::ScopedTimer batch_timer(score_hist_, "serve.score");
    Tensor x(Shape{rows, M});
    std::vector<std::size_t> offsets;
    std::vector<std::size_t> seg_ids;
    std::vector<std::size_t> block_lens;
    offsets.reserve(rows);
    seg_ids.reserve(rows);
    block_lens.reserve(j - i);
    std::size_t base = 0;
    for (std::size_t k = i; k < j; ++k) {
      const PendingUnit& unit = units[k];
      const std::size_t len = unit.tokens.size(0);
      for (std::size_t r = 0; r < len; ++r) {
        for (std::size_t m = 0; m < M; ++m)
          x.at(base + r, m) = unit.tokens.at(r, m);
        offsets.push_back(unit.offset + r);
        seg_ids.push_back(unit.segment_id);
      }
      block_lens.push_back(len);
      base += len;
    }
    // Strict: the canonical autograd forward, bitwise-stable for replay.
    // Relaxed/quantized: the compiled plan — same math, vector rounding.
    Tensor rec_all;
    if (plan) {
      rec_all = plan->forward(x, offsets, seg_ids, block_lens,
                              scoring_workspace(), pool_);
    } else {
      rec_all = entry.model
                    ->forward_blocked(Var::constant(std::move(x)), offsets,
                                      seg_ids, rng, block_lens)
                    .value();
    }
    std::vector<ScoredUnit> results;
    results.reserve(j - i);
    std::size_t points = 0;
    base = 0;
    for (std::size_t k = i; k < j; ++k) {
      const PendingUnit& unit = units[k];
      const std::size_t len = unit.tokens.size(0);
      const Tensor rec = slice_rows(rec_all, base, base + len);
      base += len;
      ScoredUnit scored;
      scored.node = unit.node;
      scored.abs_begin = unit.abs_begin;
      scored.scores.assign(len, 0.0f);
      ValidityMask unit_mask;
      if (masked_mode_) {
        unit_mask = ValidityMask(1, M, len, 1);
        for (std::size_t r = 0; r < len; ++r)
          for (std::size_t m = 0; m < M; ++m)
            unit_mask.at(0, m, r) = unit.valid[r * M + m];
      }
      scored.scored_points = chunk_point_scores(
          entry, rec, unit.tokens, masked_mode_ ? &unit_mask : nullptr, 0, 0,
          scored.scores.data());
      if (config_.attribution) {
        // Separate pass, identical arithmetic: the score bits above are
        // already written and never revisited.
        scored.contrib.assign(len * M, 0.0f);
        chunk_point_metric_contributions(
            entry.metric_weights, entry.residual_scale, entry.baseline_error,
            rec, unit.tokens, masked_mode_ ? &unit_mask : nullptr, 0, 0,
            scored.contrib.data());
      }
      points += scored.scored_points;
      results.push_back(std::move(scored));
    }
    batch_timer.stop();  // the batched forward + scoring, not the fold-in
    {
      std::lock_guard<std::mutex> lock(results_mutex_);
      for (ScoredUnit& scored : results)
        scored_ready_.push_back(std::move(scored));
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.batches_run;
      units_batched_total_ += j - i;
      stats_.chunks_scored += j - i;
      stats_.points_scored += points;
    }
    i = j;
  }
}

void ServeEngine::score_cluster_units_consensus(std::size_t cluster,
                                                std::vector<PendingUnit> units) {
  const ClusterEntry& entry = sentry_->library().clusters()[cluster];
  // One snapshot for the whole batch: every unit in it is scored by the
  // same generation set, and the snapshot keeps retired generations alive
  // through our forwards (the RCU grace period).
  const std::shared_ptr<const GenerationSet> snap =
      gen_registry_->snapshot(cluster);
  std::vector<const ModelGeneration*> gens;
  gens.reserve(snap->generations.size());
  for (const ModelGeneration& gen : snap->generations)
    if (!gen.quarantined && gen.model) gens.push_back(&gen);
  // Graceful degradation: an all-quarantined (or unseeded) cluster falls
  // back to the fitted library entry as a stand-in lane-0 generation.
  ModelGeneration fallback;
  if (gens.empty()) {
    fallback.model = entry.model;
    fallback.residual_scale = entry.residual_scale.clone();
    fallback.baseline_error = entry.baseline_error;
    gens.push_back(&fallback);
  }
  const std::size_t G = config_.generations;
  // Relaxed/quantized: one compiled plan per live generation, each built
  // with the calibration checkpointed alongside that generation.
  std::vector<std::shared_ptr<const ScoringPlan>> plans;
  if (config_.scoring_path != ScoringPath::kStrict) {
    plans.reserve(gens.size());
    for (const ModelGeneration* gen : gens)
      plans.push_back(plan_for(gen->model, gen->quant_calibration.get()));
  }
  // The cluster lock serializes every generation's forward for this
  // cluster (MoE routing state is per-model, but the retrainer clones from
  // these models concurrently — one lock per cluster keeps the contract
  // simple and the batches of different clusters still run in parallel).
  std::lock_guard<std::mutex> cluster_lock(cluster_locks_->lock(cluster));
  Rng rng(0);  // eval-mode forwards are deterministic and never draw
  const std::size_t M = num_metrics_;
  std::size_t i = 0;
  while (i < units.size()) {
    std::size_t j = i + 1;
    std::size_t rows = units[i].tokens.size(0);
    if (config_.max_batch_tokens > 0) {
      while (j < units.size() &&
             rows + units[j].tokens.size(0) <= config_.max_batch_tokens) {
        rows += units[j].tokens.size(0);
        ++j;
      }
    }
    obs::ScopedTimer batch_timer(score_hist_, "serve.score");
    Tensor x(Shape{rows, M});
    std::vector<std::size_t> offsets;
    std::vector<std::size_t> seg_ids;
    std::vector<std::size_t> block_lens;
    offsets.reserve(rows);
    seg_ids.reserve(rows);
    block_lens.reserve(j - i);
    std::size_t base = 0;
    for (std::size_t k = i; k < j; ++k) {
      const PendingUnit& unit = units[k];
      const std::size_t len = unit.tokens.size(0);
      for (std::size_t r = 0; r < len; ++r) {
        for (std::size_t m = 0; m < M; ++m)
          x.at(base + r, m) = unit.tokens.at(r, m);
        offsets.push_back(unit.offset + r);
        seg_ids.push_back(unit.segment_id);
      }
      block_lens.push_back(len);
      base += len;
    }
    // Per-unit validity masks are generation-independent: build them once.
    std::vector<ValidityMask> masks;
    if (masked_mode_) {
      masks.reserve(j - i);
      for (std::size_t k = i; k < j; ++k) {
        const PendingUnit& unit = units[k];
        const std::size_t len = unit.tokens.size(0);
        ValidityMask mask(1, M, len, 1);
        for (std::size_t r = 0; r < len; ++r)
          for (std::size_t m = 0; m < M; ++m)
            mask.at(0, m, r) = unit.valid[r * M + m];
        masks.push_back(std::move(mask));
      }
    }
    std::vector<ScoredUnit> results(j - i);
    std::size_t points = 0;
    for (std::size_t gi = 0; gi < gens.size(); ++gi) {
      const ModelGeneration& gen = *gens[gi];
      const bool newest = gi + 1 == gens.size();
      Tensor rec_all;
      if (!plans.empty()) {
        rec_all = plans[gi]->forward(x, offsets, seg_ids, block_lens,
                                     scoring_workspace(), pool_);
      } else {
        rec_all = gen.model
                      ->forward_blocked(Var::constant(x.clone()), offsets,
                                        seg_ids, rng, block_lens)
                      .value();
      }
      base = 0;
      for (std::size_t k = i; k < j; ++k) {
        const PendingUnit& unit = units[k];
        const std::size_t len = unit.tokens.size(0);
        const Tensor rec = slice_rows(rec_all, base, base + len);
        base += len;
        ScoredUnit& scored = results[k - i];
        std::vector<float> lane(len, 0.0f);
        const std::size_t scored_points = chunk_point_scores(
            entry.metric_weights, gen.residual_scale, gen.baseline_error, rec,
            unit.tokens, masked_mode_ ? &masks[k - i] : nullptr, 0, 0,
            lane.data());
        scored.lanes.push_back(static_cast<std::uint8_t>(gen.gen_id % G));
        if (newest) {
          // The newest generation is the primary lane: its scores feed the
          // reported timeline (and, with G == 1, reproduce the single-model
          // path bitwise).
          scored.node = unit.node;
          scored.abs_begin = unit.abs_begin;
          scored.scores = lane;
          scored.scored_points = scored_points;
          if (config_.attribution) {
            // Attribution follows the primary lane: the same generation
            // statistics that produced the reported scores.
            scored.contrib.assign(len * M, 0.0f);
            chunk_point_metric_contributions(
                entry.metric_weights, gen.residual_scale, gen.baseline_error,
                rec, unit.tokens, masked_mode_ ? &masks[k - i] : nullptr, 0, 0,
                scored.contrib.data());
          }
          points += scored_points;
        }
        scored.lane_scores.push_back(std::move(lane));
      }
    }
    batch_timer.stop();
    {
      std::lock_guard<std::mutex> lock(results_mutex_);
      for (ScoredUnit& scored : results)
        scored_ready_.push_back(std::move(scored));
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.batches_run;
      units_batched_total_ += j - i;
      stats_.chunks_scored += j - i;
      stats_.points_scored += points;
    }
    i = j;
  }
}

void ServeEngine::drain_scored() {
  std::vector<ScoredUnit> ready;
  {
    std::lock_guard<std::mutex> lock(results_mutex_);
    ready.swap(scored_ready_);
  }
  // Lane/attribution timelines get the same reserve-to-extent treatment as
  // the commit path: the node's known frontier is the hint, so one
  // reservation covers many future units.
  std::size_t reallocs = 0;
  for (const ScoredUnit& unit : ready) {
    std::vector<float>& timeline = scores_[unit.node];
    const std::size_t end = unit.abs_begin + unit.scores.size();
    const std::size_t hint = std::max(nodes_[unit.node].max_seen + 1, end);
    reallocs += grow_timeline(timeline, end, hint, 0.0f);
    // Units cover disjoint [abs_begin, end) ranges; unscored cells inside a
    // unit are 0 in its buffer, matching batch detect() leaving them 0.
    std::copy(unit.scores.begin(), unit.scores.end(),
              timeline.begin() + static_cast<std::ptrdiff_t>(unit.abs_begin));
    if (!unit.contrib.empty()) {
      std::vector<float>& plane = contrib_[unit.node];
      const std::size_t M = num_metrics_;
      reallocs += grow_timeline(plane, end * M, hint * M, 0.0f);
      std::copy(unit.contrib.begin(), unit.contrib.end(),
                plane.begin() + static_cast<std::ptrdiff_t>(unit.abs_begin * M));
    }
    if (unit.lanes.empty()) continue;
    // Consensus mode: fold every generation's scores into its lane
    // timeline and record which lanes covered these points. Lanes within
    // one snapshot are distinct (gen_ids are consecutive, G apart repeats).
    std::vector<std::uint8_t>& active = lane_active_[unit.node];
    reallocs += grow_timeline(active, end, hint, std::uint8_t{0});
    for (std::size_t li = 0; li < unit.lanes.size(); ++li) {
      const std::uint8_t lane = unit.lanes[li];
      std::vector<float>& lane_timeline = lane_scores_[lane][unit.node];
      reallocs += grow_timeline(lane_timeline, end, hint, 0.0f);
      std::copy(
          unit.lane_scores[li].begin(), unit.lane_scores[li].end(),
          lane_timeline.begin() + static_cast<std::ptrdiff_t>(unit.abs_begin));
      for (std::size_t t = unit.abs_begin; t < end; ++t)
        active[t] |= static_cast<std::uint8_t>(1u << lane);
    }
  }
  if (reallocs > 0) {
    score_reallocs_counter_->inc(reallocs);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.score_reallocs += reallocs;
  }
}

void ServeEngine::close_segment(std::size_t node, std::size_t end) {
  NodeState& st = nodes_[node];
  OpenSegment& seg = *st.open;
  const std::size_t len = seg.rows.size();
  NS_CHECK(seg.begin + len == end, "serve: segment length mismatch");
  if (len >= 2) {
    if (!seg.matched && !seg.insufficient) match_segment(node);
    // Insufficient segments still define a reference range (their scores
    // stay 0), exactly like batch detect()'s outcome handling.
    ranges_[node].emplace_back(seg.begin, seg.begin + len);
    if (seg.matched && !seg.insufficient) {
      emit_ready_chunks(node, /*closing=*/true, len);
      if (config_.retrainer != nullptr) {
        // ORDERING (intentional, not a bug): this offer happens at segment
        // close, BEFORE detection flags exist — flags are only computed at
        // finalize(), when the k-sigma reference levels see the full
        // timeline. A live retrainer cannot wait for end-of-stream, so
        // offers are flag-agnostic by design; the guard against training on
        // anomalous data is the retrainer's own validation gate plus
        // poisoned-segment rejection, NOT a flag filter here. Sealed store
        // rows are unaffected: the store path stamps anomaly bits at
        // finalize() from the same predictions it reports, so store bits
        // and detections always agree regardless of retrain timing
        // (pinned by ServeRetrainerStoreAgreement).
        //
        // Feed the retrainer the same representation the models score:
        // centered tokens, capped to the leading max_tokens_per_segment
        // rows (mirrors the fit pipeline's per-segment cap). The ring is
        // bounded and the offer never blocks ingest.
        const std::size_t cap = sentry_->config().max_tokens_per_segment;
        const std::size_t rows = cap > 0 ? std::min(len, cap) : len;
        if (rows >= 2) {
          const std::size_t M = num_metrics_;
          Tensor tokens(Shape{rows, M});
          for (std::size_t r = 0; r < rows; ++r)
            for (std::size_t m = 0; m < M; ++m)
              tokens.at(r, m) = seg.rows[r][m] - seg.center_mu[m];
          config_.retrainer->offer_segment(seg.cluster, std::move(tokens),
                                           seg.segment_id);
        }
      }
    }
  } else {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.segments_too_short;
  }
  st.open.reset();
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.segments_closed;
}

ServeResult ServeEngine::finalize() {
  NS_REQUIRE(!finalized_, "serve: finalize called twice");
  finalized_ = true;
  // Stream is over: everything stashed is as settled as it will ever get.
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    NodeState& st = nodes_[n];
    while (!st.stash.empty()) {
      const std::size_t next_stashed = st.stash.begin()->first;
      while (st.next_t < next_stashed) fill_gap_row(n);
      auto it = st.stash.begin();
      const std::int64_t job = it->second.job_id;
      StreamPreprocessor::Row row = std::move(it->second.row);
      std::vector<float> raw = std::move(it->second.raw);
      st.stash.erase(it);
      st.gap_run = 0;
      if (config_.store_writer != nullptr)
        retain_sample(n, st.next_t, job, std::move(raw), row);
      commit_row(n, st.next_t, job, std::move(row));
      ++st.next_t;
    }
    if (st.open) close_segment(n, st.next_t);
  }
  pump();
  for (auto& f : inflight_) f.get();
  inflight_.clear();
  drain_scored();

  std::size_t timeline_end = start_t_;
  for (const std::vector<float>& timeline : scores_)
    timeline_end = std::max(timeline_end, timeline.size());

  ServeResult result;
  result.timeline_end = timeline_end;
  result.detections.assign(nodes_.size(), NodeDetection{});
  if (config_.attribution) {
    result.attribution.num_metrics = num_metrics_;
    result.attribution.contrib.assign(nodes_.size(), {});
  }
  const NodeSentryConfig& cfg = sentry_->config();
  // Per-node thresholding writes disjoint detection records; fan it out
  // across the engine's pool (all scoring tasks have drained by now).
  pool_->parallel_for(0, nodes_.size(), 1, [&](std::size_t n) {
    NodeDetection& det = result.detections[n];
    det.scores = std::move(scores_[n]);
    det.scores.resize(timeline_end, 0.0f);
    if (config_.attribution) {
      // Same alignment as the scores: one [t, M] plane per node, zero
      // wherever the point was never scored.
      std::vector<float>& plane = result.attribution.contrib[n];
      plane = std::move(contrib_[n]);
      plane.resize(timeline_end * num_metrics_, 0.0f);
    }
    if (!config_.consensus_scoring) {
      const std::vector<float> reference =
          score_reference_levels(det.scores, ranges_[n]);
      det.predictions = detection_flags(det.scores, reference, start_t_, cfg);
      return;
    }
    std::size_t points = 0;
    std::size_t disagreements = 0;
    consensus_node_predictions(n, det, timeline_end, &points, &disagreements);
    if (points > 0) consensus_points_counter_->inc(points);
    if (disagreements > 0)
      consensus_disagreements_counter_->inc(disagreements);
    if (points > 0 || disagreements > 0) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.consensus_points += points;
      stats_.consensus_disagreements += disagreements;
    }
  });
  if (config_.store_writer != nullptr) {
    // Flag time: each retained sample gets its in-band anomaly bit from
    // the thresholded predictions — immutable "what was detectable THEN"
    // history — then the per-node batches go to the async writer. The
    // caller drains the writer when it wants the store durable.
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      if (retained_[n].empty()) continue;
      StoreWriter::Batch batch;
      batch.node = n;
      batch.samples = std::move(retained_[n]);
      const std::vector<std::uint8_t>& flags = result.detections[n].predictions;
      for (StoreSample& sample : batch.samples)
        sample.anomaly = sample.t < flags.size() && flags[sample.t] != 0;
      config_.store_writer->enqueue(std::move(batch));
    }
  }
  result.stats = stats();
  return result;
}

void ServeEngine::consensus_node_predictions(
    std::size_t node, NodeDetection& det, std::size_t timeline_end,
    std::size_t* out_points, std::size_t* out_disagreements) const {
  const NodeSentryConfig& cfg = sentry_->config();
  const std::size_t G = config_.generations;
  const std::vector<std::uint8_t>& active = lane_active_[node];
  std::uint8_t node_mask = 0;
  for (const std::uint8_t bits : active) node_mask |= bits;
  // Each lane thresholds its own full timeline with the shared k-sigma
  // machinery — identical arithmetic to the single-model path, so a lone
  // lane (G == 1) reproduces it bitwise.
  std::vector<std::vector<std::uint8_t>> lane_flags(G);
  for (std::size_t lane = 0; lane < G; ++lane) {
    if ((node_mask & (1u << lane)) == 0) continue;
    std::vector<float> lane_timeline = lane_scores_[lane][node];
    lane_timeline.resize(timeline_end, 0.0f);
    const std::vector<float> reference =
        score_reference_levels(lane_timeline, ranges_[node]);
    lane_flags[lane] =
        detection_flags(lane_timeline, reference, start_t_, cfg);
  }
  det.predictions.assign(timeline_end, 0);
  const std::uint8_t all_mask =
      static_cast<std::uint8_t>(G >= 8 ? 0xFFu : (1u << G) - 1u);
  std::size_t points = 0;
  std::size_t disagreements = 0;
  for (std::size_t t = start_t_; t < timeline_end; ++t) {
    std::uint8_t mask = t < active.size() ? active[t] : 0;
    const bool voted = mask != 0;
    // Unscored points fall back to the lanes that scored this node at all
    // (their flags still cover t through smoothing), then to every lane:
    // all-absent flags vote 0 and the point stays unflagged, matching the
    // single-model path's score-0 handling.
    if (mask == 0) mask = node_mask != 0 ? node_mask : all_mask;
    std::size_t votes = 0;
    std::size_t active_lanes = 0;
    for (std::size_t lane = 0; lane < G; ++lane) {
      if ((mask & (1u << lane)) == 0) continue;
      ++active_lanes;
      if (!lane_flags[lane].empty() && lane_flags[lane][t]) ++votes;
    }
    // Bootstrap/quarantine degradation: with fewer than Q live lanes, the
    // ones that exist decide.
    const std::size_t need = std::min(config_.consensus_quorum, active_lanes);
    det.predictions[t] = (active_lanes > 0 && votes >= need) ? 1 : 0;
    if (voted) {
      ++points;
      if (votes > 0 && votes < active_lanes) ++disagreements;
    }
  }
  *out_points = points;
  *out_disagreements = disagreements;
}

bool ServeEngine::checkpoint(const std::string& dir) {
  if (gen_registry_ == nullptr) return false;
  gen_registry_->save(dir);
  return true;
}

ServeStats ServeEngine::stats() const {
  ServeStats snapshot;
  {
    // queue_depth comes from the copy published under stats_mutex_ at
    // every pending_ mutation — stats() must never touch pending_ itself
    // (the deque is owned by the ingest thread; reading its size here was
    // a data race when a monitor thread polled during ingest).
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot = stats_;
    snapshot.mean_batch_occupancy =
        snapshot.batches_run > 0
            ? static_cast<double>(units_batched_total_) /
                  static_cast<double>(snapshot.batches_run)
            : 0.0;
  }
  snapshot.ingest_latency = summarize_histogram(*ingest_hist_);
  snapshot.match_latency = summarize_histogram(*match_hist_);
  snapshot.score_latency = summarize_histogram(*score_hist_);
  return snapshot;
}

}  // namespace ns
