// Shared helpers for the table/figure reproduction harnesses.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/nodesentry.hpp"
#include "eval/metrics.hpp"
#include "sim/dataset_builder.hpp"

namespace ns::bench {

/// Transition-guard evaluation masks for every node (1-minute guards at
/// 15-second sampling = 4 steps, §4.1.4).
inline std::vector<std::vector<std::uint8_t>> masks_for(const SimDataset& sim) {
  std::vector<std::vector<std::uint8_t>> masks;
  masks.reserve(sim.data.num_nodes());
  for (std::size_t n = 0; n < sim.data.num_nodes(); ++n)
    masks.push_back(evaluation_mask(sim.data.jobs[n],
                                    sim.data.num_timestamps(), sim.train_end,
                                    /*guard_steps=*/4));
  return masks;
}

inline DetectionMetrics evaluate(const SimDataset& sim,
                                 const std::vector<NodeDetection>& detections) {
  return aggregate_nodes(detections, sim.data.labels, masks_for(sim));
}

/// NodeSentry configuration used across benches (documented in
/// EXPERIMENTS.md; the paper's artifact settings, scaled to the bench data).
inline NodeSentryConfig bench_nodesentry_config(std::uint64_t seed = 1234) {
  NodeSentryConfig config;
  config.train_epochs = 10;
  config.learning_rate = 3e-3f;
  config.seed = seed;
  return config;
}

/// Bench-default datasets: the paper's D1/D2 shapes at the documented scale
/// factor, with the anomaly ratio raised so the scaled test region holds a
/// statistically meaningful number of fault events (see EXPERIMENTS.md).
inline SimDataset make_d1(std::uint64_t seed = 11) {
  SimDatasetConfig config = d1_sim_config(1.0, seed);
  config.anomaly_ratio = 0.008;
  return build_sim_dataset(config);
}

inline SimDataset make_d2(std::uint64_t seed = 22) {
  SimDatasetConfig config = d2_sim_config(1.0, seed);
  config.anomaly_ratio = 0.008;
  return build_sim_dataset(config);
}

/// Formats seconds compactly (ms / s / min) for table cells.
inline std::string format_seconds(double seconds) {
  char buffer[32];
  if (seconds < 1.0)
    std::snprintf(buffer, sizeof buffer, "%.0f ms", seconds * 1e3);
  else if (seconds < 120.0)
    std::snprintf(buffer, sizeof buffer, "%.2f s", seconds);
  else
    std::snprintf(buffer, sizeof buffer, "%.1f min", seconds / 60.0);
  return buffer;
}

}  // namespace ns::bench
