// Minimal leveled logger. Thread-safe, writes to stderr by default.
#pragma once

#include <sstream>
#include <string>

namespace ns {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace ns

#define NS_LOG(level, expr)                                          \
  do {                                                               \
    if (static_cast<int>(level) >= static_cast<int>(::ns::log_level())) { \
      std::ostringstream ns_log_os_;                                 \
      ns_log_os_ << expr; /* NOLINT */                               \
      ::ns::detail::log_emit(level, ns_log_os_.str());               \
    }                                                                \
  } while (false)

#define NS_LOG_DEBUG(expr) NS_LOG(::ns::LogLevel::kDebug, expr)
#define NS_LOG_INFO(expr) NS_LOG(::ns::LogLevel::kInfo, expr)
#define NS_LOG_WARN(expr) NS_LOG(::ns::LogLevel::kWarn, expr)
#define NS_LOG_ERROR(expr) NS_LOG(::ns::LogLevel::kError, expr)
