// serve_replay: streams a materialized dataset through any ServeBackend
// (a lone ServeEngine or a sharded FleetEngine) the way a collector would
// deliver it — per-sample, optionally jittered and paced in (accelerated)
// real time — and finalizes the backend. This is the equivalence harness:
// on clean data the result must reproduce batch detect() (incremental
// updates off) within float round-off.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "serve/backend.hpp"
#include "sim/stream.hpp"
#include "store/store.hpp"

namespace ns {

struct ReplayOptions {
  /// 0 = replay as fast as possible; otherwise pace delivery at
  /// speedup x real time (one tick every interval_seconds / speedup).
  double speedup = 0.0;
  /// Explicit engine.pump() every this many samples (0 = rely purely on
  /// the engine's pump watermark).
  std::size_t pump_every = 256;
  /// Invoked on the streaming thread every `progress_every` samples (0 =
  /// never) with the running sample count — the periodic metrics-dump
  /// hook for long replays (see nodesentry_serve --metrics-every).
  std::size_t progress_every = 0;
  std::function<void(std::size_t samples_streamed)> on_progress;
  ReplayJitterConfig jitter;
};

struct ReplayReport {
  ServeResult result;
  std::size_t samples_streamed = 0;
  double ingest_seconds = 0.0;       ///< wall time of the streaming loop
  double samples_per_second = 0.0;
};

/// Streams every sample of `raw` from begin_t (normally the fitted
/// train_end) through `backend`, pumps periodically, and finalizes.
/// Accepts any ServeBackend — single engine or fleet.
ReplayReport serve_replay(ServeBackend& backend, const MtsDataset& raw,
                          std::size_t begin_t,
                          const ReplayOptions& options = {});

/// Max |score difference| and prediction mismatch count between two
/// detection sets (e.g. serve replay vs batch detect). Shorter timelines
/// are treated as zero-padded.
struct DetectionDelta {
  double max_abs_score_delta = 0.0;
  std::size_t prediction_mismatches = 0;
};

DetectionDelta compare_detections(const std::vector<NodeDetection>& a,
                                  const std::vector<NodeDetection>& b);

/// Store-vs-detections equivalence: every sealed sample's in-band anomaly
/// bit must equal the prediction flag of its (node, tick). Pins the third
/// leg of replay == detect == store — the detections.csv the replay wrote
/// and the bits the store sealed describe the same history, bitwise.
struct StoreDelta {
  std::size_t samples_compared = 0;
  std::size_t flag_mismatches = 0;   ///< in-band bit != prediction flag
  std::size_t samples_unflagged = 0; ///< sample tick past the timeline
};

StoreDelta compare_detections_with_store(
    const std::vector<NodeDetection>& detections,
    const TimeSeriesStore& store, std::size_t begin_t);

}  // namespace ns
