#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/fileio.hpp"
#include "common/mathutil.hpp"

namespace ns::obs {
namespace {

void append_escaped(std::string& out, const std::string& value) {
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

/// `{a="b",c="d"}` — with `extra` ("le", bound) appended when given.
/// Empty label set without extra renders as nothing.
void append_label_block(std::string& out, const LabelSet& labels,
                        const char* extra_key = nullptr,
                        const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    append_escaped(out, value);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
}

std::string format_bound(double bound) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", bound);
  return buf;
}

const char* kind_name(Registry::Kind kind) {
  switch (kind) {
    case Registry::Kind::kCounter: return "counter";
    case Registry::Kind::kGauge: return "gauge";
    case Registry::Kind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string to_prometheus(const Registry& registry) {
  const std::vector<Registry::Entry> entries = registry.entries();
  std::string out;
  out.reserve(entries.size() * 128);
  std::string last_family;
  for (const Registry::Entry& entry : entries) {
    if (entry.name != last_family) {
      // entries() sorts by name, so one HELP/TYPE header covers every
      // label combination of the family.
      out += "# HELP " + entry.name + " ";
      append_escaped(out, entry.help);
      out += "\n# TYPE " + entry.name + " ";
      out += kind_name(entry.kind);
      out += '\n';
      last_family = entry.name;
    }
    switch (entry.kind) {
      case Registry::Kind::kCounter: {
        out += entry.name;
        append_label_block(out, entry.labels);
        out += ' ';
        out += std::to_string(entry.counter->value());
        out += '\n';
        break;
      }
      case Registry::Kind::kGauge: {
        out += entry.name;
        append_label_block(out, entry.labels);
        out += ' ';
        append_double(out, entry.gauge->value());
        out += '\n';
        break;
      }
      case Registry::Kind::kHistogram: {
        const Histogram::Snapshot snap = entry.histogram->snapshot();
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
          cumulative += snap.buckets[b];
          const std::string le = b < snap.upper_bounds.size()
                                     ? format_bound(snap.upper_bounds[b])
                                     : std::string("+Inf");
          out += entry.name + "_bucket";
          append_label_block(out, entry.labels, "le", le);
          out += ' ';
          out += std::to_string(cumulative);
          out += '\n';
        }
        out += entry.name + "_sum";
        append_label_block(out, entry.labels);
        out += ' ';
        append_double(out, snap.sum);
        out += '\n';
        out += entry.name + "_count";
        append_label_block(out, entry.labels);
        out += ' ';
        out += std::to_string(snap.count);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

std::string to_json(const Registry& registry) {
  const std::vector<Registry::Entry> entries = registry.entries();
  std::string out = "{\n  \"metrics\": [";
  bool first_metric = true;
  for (const Registry::Entry& entry : entries) {
    out += first_metric ? "\n" : ",\n";
    first_metric = false;
    out += "    {\"name\": \"" + entry.name + "\", \"type\": \"";
    out += kind_name(entry.kind);
    out += "\", \"labels\": {";
    bool first_label = true;
    for (const auto& [key, value] : entry.labels) {
      if (!first_label) out += ", ";
      first_label = false;
      out += "\"" + key + "\": \"";
      append_escaped(out, value);
      out += '"';
    }
    out += '}';
    switch (entry.kind) {
      case Registry::Kind::kCounter:
        out += ", \"value\": " + std::to_string(entry.counter->value());
        break;
      case Registry::Kind::kGauge:
        out += ", \"value\": ";
        append_double(out, entry.gauge->value());
        break;
      case Registry::Kind::kHistogram: {
        const Histogram::Snapshot snap = entry.histogram->snapshot();
        out += ", \"count\": " + std::to_string(snap.count);
        out += ", \"sum\": ";
        append_double(out, snap.sum);
        out += ", \"buckets\": [";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
          cumulative += snap.buckets[b];
          if (b > 0) out += ", ";
          out += "{\"le\": ";
          if (b < snap.upper_bounds.size())
            append_double(out, snap.upper_bounds[b]);
          else
            out += "\"+Inf\"";
          out += ", \"count\": " + std::to_string(cumulative) + "}";
        }
        out += ']';
        if (!snap.window.empty()) {
          std::vector<float> window = snap.window;
          std::sort(window.begin(), window.end());
          static constexpr double kQs[] = {0.5, 0.9, 0.99};
          const std::vector<double> qs = quantiles_from_sorted(window, kQs);
          out += ", \"window\": {\"samples\": " +
                 std::to_string(window.size());
          out += ", \"p50\": ";
          append_double(out, qs[0]);
          out += ", \"p90\": ";
          append_double(out, qs[1]);
          out += ", \"p99\": ";
          append_double(out, qs[2]);
          out += ", \"max\": ";
          append_double(out, window.back());
          out += '}';
        }
        break;
      }
    }
    out += '}';
  }
  out += "\n  ]\n}\n";
  return out;
}

void write_metrics_files(const Registry& registry,
                         const std::string& path_prefix) {
  const std::filesystem::path parent =
      std::filesystem::path(path_prefix).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  write_file_atomic(path_prefix + ".prom", to_prometheus(registry));
  write_file_atomic(path_prefix + ".json", to_json(registry));
}

}  // namespace ns::obs
