#include "io/table.hpp"

#include <algorithm>
#include <sstream>

namespace ns {

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      os << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace ns
