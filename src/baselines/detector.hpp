// Common interface for the baseline anomaly detectors compared against
// NodeSentry in Table 4 (Prodigy, RUAD, ExaMon, ISC'20).
//
// Every baseline consumes the same preprocessed dataset (cleaning /
// reduction / standardization are shared infrastructure, as in the paper's
// controlled comparison) and produces per-node scores + binary predictions.
// All baselines threshold their scores with the same sliding k-sigma rule
// used by NodeSentry so the comparison isolates score quality.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "eval/metrics.hpp"
#include "ts/mts.hpp"

namespace ns {

struct DetectorReport {
  std::vector<NodeDetection> detections;  ///< per node, full timeline
  double train_seconds = 0.0;
  double detect_seconds = 0.0;
};

class Detector {
 public:
  virtual ~Detector() = default;
  virtual std::string name() const = 0;
  /// Trains on [0, train_end) of every node and scores [train_end, T).
  virtual DetectorReport run(const MtsDataset& processed,
                             std::size_t train_end) = 0;
};

/// Shared thresholding used by every baseline: causal median smoothing,
/// sliding k-sigma with relative floors (same defaults as NodeSentry).
std::vector<std::uint8_t> baseline_threshold(const std::vector<float>& scores,
                                             std::size_t train_end,
                                             std::size_t total);

}  // namespace ns
