// Iterative radix-2 FFT and power-spectrum helper for spectral features.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace ns {

/// In-place iterative Cooley–Tukey FFT; data.size() must be a power of two.
/// inverse=true computes the unscaled inverse transform (caller divides by N).
void fft_inplace(std::vector<std::complex<double>>& data, bool inverse = false);

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// One-sided power spectrum of a real series: the input is mean-removed,
/// zero-padded to the next power of two, transformed, and |X_k|^2 returned
/// for k = 0 .. N/2. Series shorter than 2 samples yield a single zero bin.
std::vector<double> power_spectrum(std::span<const float> series);

}  // namespace ns
