#include "correlate/incident.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <utility>

#include "common/error.hpp"
#include "common/stopwatch.hpp"

namespace ns {

namespace {

/// One maximal run of flagged ticks on one node — the unit of grouping.
struct AnomalyEvent {
  std::size_t node = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::int64_t job_id = -1;
  std::size_t rack = 0;
  const std::string* archetype = nullptr;  ///< null/empty = unknown
  double score_sum = 0.0;
  float peak = 0.0f;
};

struct UnionFind {
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }
  std::vector<std::size_t> parent;
};

const std::string* archetype_of(const IncidentGroupingMeta& meta,
                                std::int64_t job_id) {
  if (meta.job_archetypes == nullptr || job_id < 0) return nullptr;
  const auto it = meta.job_archetypes->find(job_id);
  return it == meta.job_archetypes->end() ? nullptr : &it->second;
}

std::int64_t job_at(const IncidentGroupingMeta& meta, std::size_t node,
                    std::size_t t) {
  if (meta.jobs == nullptr || node >= meta.jobs->size()) return -1;
  for (const JobSpan& span : (*meta.jobs)[node])
    if (span.begin <= t && t < span.end)
      return span.is_idle() ? -1 : span.job_id;
  return -1;
}

bool same_archetype(const AnomalyEvent& a, const AnomalyEvent& b) {
  return a.archetype != nullptr && b.archetype != nullptr &&
         !a.archetype->empty() && *a.archetype == *b.archetype;
}

void json_escape(FILE* f, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') std::fputc('\\', f);
    std::fputc(c, f);
  }
}

}  // namespace

const char* incident_scope_name(IncidentScope scope) {
  switch (scope) {
    case IncidentScope::kNode: return "node";
    case IncidentScope::kJob: return "job";
    case IncidentScope::kRack: return "rack";
    case IncidentScope::kArchetype: return "archetype";
    case IncidentScope::kMixed: return "mixed";
  }
  return "unknown";
}

IncidentEngine::IncidentEngine(IncidentConfig config)
    : config_(std::move(config)) {
  NS_REQUIRE(config_.rack_size >= 1, "correlate: rack_size must be >= 1");
  NS_REQUIRE(config_.min_nodes >= 1, "correlate: min_nodes must be >= 1");
  obs::Registry* registry =
      config_.registry ? config_.registry : &obs::Registry::global();
  events_counter_ =
      &registry->counter("ns_correlate_anomaly_events_total",
                         "Per-node anomaly runs consumed by the correlator");
  incidents_counter_ = &registry->counter(
      "ns_correlate_incidents_total", "Incidents emitted by the correlator");
  grouped_nodes_counter_ = &registry->counter(
      "ns_correlate_grouped_nodes_total",
      "Nodes grouped into multi-node incidents");
  build_hist_ = &registry->histogram(
      "ns_correlate_build_seconds", "Incident correlation build latency",
      obs::default_latency_buckets());
  span_hist_ = &registry->histogram(
      "ns_correlate_incident_span_ticks", "Covering window of each incident",
      {4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0});
}

IncidentReport IncidentEngine::build(const ServeResult& result,
                                     std::size_t start_t,
                                     const IncidentGroupingMeta& meta) const {
  Stopwatch sw;
  IncidentReport report;

  // ---- 1. extract per-node anomaly events (maximal flagged runs)
  std::vector<AnomalyEvent> events;
  for (std::size_t n = 0; n < result.detections.size(); ++n) {
    const NodeDetection& det = result.detections[n];
    bool node_flagged = false;
    std::size_t t = start_t;
    const std::size_t T = det.predictions.size();
    while (t < T) {
      if (det.predictions[t] == 0) {
        ++t;
        continue;
      }
      AnomalyEvent event;
      event.node = n;
      event.begin = t;
      while (t < T && det.predictions[t] != 0) {
        const float s = t < det.scores.size() ? det.scores[t] : 0.0f;
        event.score_sum += s;
        event.peak = std::max(event.peak, s);
        ++t;
      }
      event.end = t;
      event.job_id = job_at(meta, n, event.begin);
      event.rack = n / config_.rack_size;
      event.archetype = archetype_of(meta, event.job_id);
      events.push_back(std::move(event));
      node_flagged = true;
    }
    if (node_flagged) ++report.nodes_flagged;
  }
  report.anomaly_events = events.size();

  // ---- 2. link co-occurring events that share a grouping key
  std::sort(events.begin(), events.end(),
            [](const AnomalyEvent& a, const AnomalyEvent& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.node < b.node;
            });
  UnionFind uf(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      // Sorted by begin: once j starts past i's window, so does every
      // later event.
      if (events[j].begin > events[i].end + config_.window) break;
      const AnomalyEvent& a = events[i];
      const AnomalyEvent& b = events[j];
      const bool same_job = config_.link_jobs && a.job_id >= 0 &&
                            a.job_id == b.job_id;
      const bool same_rack = config_.link_racks && a.rack == b.rack;
      const bool same_arch =
          config_.link_archetypes && same_archetype(a, b);
      if (same_job || same_rack || same_arch) uf.unite(i, j);
    }
  }

  // ---- 3. components -> incidents
  std::unordered_map<std::size_t, std::vector<std::size_t>> components;
  for (std::size_t i = 0; i < events.size(); ++i)
    components[uf.find(i)].push_back(i);
  const std::size_t M = result.attribution.num_metrics;
  std::vector<Incident> incidents;
  for (auto& [root, members] : components) {
    Incident incident;
    incident.begin = events[members.front()].begin;
    incident.end = events[members.front()].end;
    bool same_job = true;
    bool same_rack = true;
    bool same_arch = true;
    std::unordered_map<std::string, std::size_t> arch_votes;
    std::unordered_map<std::size_t, IncidentNodeRank> node_ranks;
    std::vector<double> metric_sums(M, 0.0);
    for (const std::size_t idx : members) {
      const AnomalyEvent& event = events[idx];
      const AnomalyEvent& first = events[members.front()];
      incident.begin = std::min(incident.begin, event.begin);
      incident.end = std::max(incident.end, event.end);
      incident.severity += event.score_sum;
      same_job = same_job && event.job_id >= 0 &&
                 event.job_id == first.job_id;
      same_rack = same_rack && event.rack == first.rack;
      same_arch = same_arch && same_archetype(event, first);
      if (event.archetype != nullptr && !event.archetype->empty())
        ++arch_votes[*event.archetype];
      IncidentNodeRank& rank = node_ranks[event.node];
      if (rank.flagged_points == 0) {
        rank.node = event.node;
        rank.begin = event.begin;
        rank.end = event.end;
      }
      rank.begin = std::min(rank.begin, event.begin);
      rank.end = std::max(rank.end, event.end);
      rank.flagged_points += event.end - event.begin;
      rank.peak_score = std::max(rank.peak_score, event.peak);
      rank.total_score += event.score_sum;
      if (M > 0 && event.node < result.attribution.contrib.size()) {
        // WMSE attribution: sum each metric's error terms over the
        // event's flagged ticks (every tick of an event is flagged by
        // construction).
        const std::vector<float>& plane =
            result.attribution.contrib[event.node];
        for (std::size_t t = event.begin; t < event.end; ++t) {
          if ((t + 1) * M > plane.size()) break;
          const float* row = plane.data() + t * M;
          for (std::size_t m = 0; m < M; ++m)
            metric_sums[m] += static_cast<double>(row[m]);
        }
      }
    }
    if (node_ranks.size() < config_.min_nodes) continue;
    // Scope: a single node is its own scope; otherwise the narrowest key
    // all members share wins (job < rack < archetype), else mixed.
    const AnomalyEvent& first = events[members.front()];
    if (node_ranks.size() == 1) {
      incident.scope = IncidentScope::kNode;
    } else if (same_job) {
      incident.scope = IncidentScope::kJob;
    } else if (same_rack) {
      incident.scope = IncidentScope::kRack;
    } else if (same_arch) {
      incident.scope = IncidentScope::kArchetype;
    } else {
      incident.scope = IncidentScope::kMixed;
    }
    if (same_job) incident.job_id = first.job_id;
    if (same_rack) incident.rack = first.rack;
    std::size_t best_votes = 0;
    for (const auto& [name, votes] : arch_votes) {
      if (votes > best_votes ||
          (votes == best_votes && name < incident.archetype)) {
        best_votes = votes;
        incident.archetype = name;
      }
    }
    incident.nodes.reserve(node_ranks.size());
    for (auto& [node, rank] : node_ranks) incident.nodes.push_back(rank);
    std::sort(incident.nodes.begin(), incident.nodes.end(),
              [](const IncidentNodeRank& a, const IncidentNodeRank& b) {
                if (a.total_score != b.total_score)
                  return a.total_score > b.total_score;
                return a.node < b.node;
              });
    if (M > 0) {
      double total = 0.0;
      for (const double s : metric_sums) total += s;
      for (std::size_t m = 0; m < M; ++m) {
        if (metric_sums[m] <= 0.0) continue;
        IncidentMetricRank rank;
        rank.metric = m;
        if (meta.metric_names != nullptr && m < meta.metric_names->size())
          rank.name = (*meta.metric_names)[m];
        rank.wmse = metric_sums[m];
        rank.share = total > 0.0 ? metric_sums[m] / total : 0.0;
        incident.metrics.push_back(std::move(rank));
      }
      std::sort(incident.metrics.begin(), incident.metrics.end(),
                [](const IncidentMetricRank& a, const IncidentMetricRank& b) {
                  if (a.wmse != b.wmse) return a.wmse > b.wmse;
                  return a.metric < b.metric;
                });
      if (config_.top_metrics > 0 &&
          incident.metrics.size() > config_.top_metrics)
        incident.metrics.resize(config_.top_metrics);
    }
    incidents.push_back(std::move(incident));
  }

  // Severity ranking; deterministic tie-break for stable output.
  std::sort(incidents.begin(), incidents.end(),
            [](const Incident& a, const Incident& b) {
              if (a.severity != b.severity) return a.severity > b.severity;
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.nodes.front().node < b.nodes.front().node;
            });
  for (std::size_t i = 0; i < incidents.size(); ++i) incidents[i].id = i;
  report.incidents = std::move(incidents);

  // ---- 4. fleet-wide ordered queries over the reported incidents
  std::unordered_map<std::size_t, IncidentMetricRank> global_metrics;
  std::unordered_map<std::size_t, IncidentNodeRank> global_nodes;
  for (const Incident& incident : report.incidents) {
    for (const IncidentMetricRank& rank : incident.metrics) {
      IncidentMetricRank& g = global_metrics[rank.metric];
      g.metric = rank.metric;
      if (g.name.empty()) g.name = rank.name;
      g.wmse += rank.wmse;
    }
    for (const IncidentNodeRank& rank : incident.nodes) {
      IncidentNodeRank& g = global_nodes[rank.node];
      if (g.flagged_points == 0) {
        g.node = rank.node;
        g.begin = rank.begin;
        g.end = rank.end;
      }
      g.begin = std::min(g.begin, rank.begin);
      g.end = std::max(g.end, rank.end);
      g.flagged_points += rank.flagged_points;
      g.peak_score = std::max(g.peak_score, rank.peak_score);
      g.total_score += rank.total_score;
    }
  }
  double global_total = 0.0;
  for (const auto& [metric, rank] : global_metrics) global_total += rank.wmse;
  report.top_metrics.reserve(global_metrics.size());
  for (auto& [metric, rank] : global_metrics) {
    rank.share = global_total > 0.0 ? rank.wmse / global_total : 0.0;
    report.top_metrics.push_back(std::move(rank));
  }
  std::sort(report.top_metrics.begin(), report.top_metrics.end(),
            [](const IncidentMetricRank& a, const IncidentMetricRank& b) {
              if (a.wmse != b.wmse) return a.wmse > b.wmse;
              return a.metric < b.metric;
            });
  if (config_.top_metrics > 0 &&
      report.top_metrics.size() > config_.top_metrics)
    report.top_metrics.resize(config_.top_metrics);
  report.top_nodes.reserve(global_nodes.size());
  for (auto& [node, rank] : global_nodes)
    report.top_nodes.push_back(std::move(rank));
  std::sort(report.top_nodes.begin(), report.top_nodes.end(),
            [](const IncidentNodeRank& a, const IncidentNodeRank& b) {
              if (a.total_score != b.total_score)
                return a.total_score > b.total_score;
              return a.node < b.node;
            });
  if (config_.top_nodes > 0 && report.top_nodes.size() > config_.top_nodes)
    report.top_nodes.resize(config_.top_nodes);

  // ---- instruments
  events_counter_->inc(report.anomaly_events);
  incidents_counter_->inc(report.incidents.size());
  std::size_t grouped = 0;
  for (const Incident& incident : report.incidents) {
    span_hist_->observe(static_cast<double>(incident.end - incident.begin));
    if (incident.nodes.size() >= 2) grouped += incident.nodes.size();
  }
  if (grouped > 0) grouped_nodes_counter_->inc(grouped);
  build_hist_->observe(sw.elapsed_s());
  return report;
}

bool write_incidents_json(const IncidentReport& report,
                          const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"anomaly_events\": %zu,\n", report.anomaly_events);
  std::fprintf(f, "  \"nodes_flagged\": %zu,\n", report.nodes_flagged);
  std::fprintf(f, "  \"incidents\": [");
  for (std::size_t i = 0; i < report.incidents.size(); ++i) {
    const Incident& incident = report.incidents[i];
    std::fprintf(f, "%s\n    {\"id\": %zu, \"scope\": \"%s\", ", i ? "," : "",
                 incident.id, incident_scope_name(incident.scope));
    std::fprintf(f, "\"job_id\": %lld, \"rack\": %zu, \"archetype\": \"",
                 static_cast<long long>(incident.job_id), incident.rack);
    json_escape(f, incident.archetype);
    std::fprintf(f, "\", \"begin\": %zu, \"end\": %zu, \"severity\": %.6f,\n",
                 incident.begin, incident.end, incident.severity);
    std::fprintf(f, "     \"nodes\": [");
    for (std::size_t k = 0; k < incident.nodes.size(); ++k) {
      const IncidentNodeRank& rank = incident.nodes[k];
      std::fprintf(f,
                   "%s{\"node\": %zu, \"begin\": %zu, \"end\": %zu, "
                   "\"flagged\": %zu, \"peak\": %.4f, \"score\": %.6f}",
                   k ? ", " : "", rank.node, rank.begin, rank.end,
                   rank.flagged_points, static_cast<double>(rank.peak_score),
                   rank.total_score);
    }
    std::fprintf(f, "],\n     \"metrics\": [");
    for (std::size_t k = 0; k < incident.metrics.size(); ++k) {
      const IncidentMetricRank& rank = incident.metrics[k];
      std::fprintf(f, "%s{\"metric\": %zu, \"name\": \"", k ? ", " : "",
                   rank.metric);
      json_escape(f, rank.name);
      std::fprintf(f, "\", \"wmse\": %.6f, \"share\": %.4f}", rank.wmse,
                   rank.share);
    }
    std::fprintf(f, "]}");
  }
  std::fprintf(f, "\n  ],\n");
  std::fprintf(f, "  \"top_metrics\": [");
  for (std::size_t k = 0; k < report.top_metrics.size(); ++k) {
    const IncidentMetricRank& rank = report.top_metrics[k];
    std::fprintf(f, "%s\n    {\"metric\": %zu, \"name\": \"", k ? "," : "",
                 rank.metric);
    json_escape(f, rank.name);
    std::fprintf(f, "\", \"wmse\": %.6f, \"share\": %.4f}", rank.wmse,
                 rank.share);
  }
  std::fprintf(f, "\n  ],\n");
  std::fprintf(f, "  \"top_nodes\": [");
  for (std::size_t k = 0; k < report.top_nodes.size(); ++k) {
    const IncidentNodeRank& rank = report.top_nodes[k];
    std::fprintf(f,
                 "%s\n    {\"node\": %zu, \"flagged\": %zu, \"score\": %.6f}",
                 k ? "," : "", rank.node, rank.flagged_points,
                 rank.total_score);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace ns
