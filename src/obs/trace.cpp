#include "obs/trace.hpp"

#include "common/error.hpp"

namespace ns::obs {

TraceLog::~TraceLog() { close(); }

TraceLog& TraceLog::global() {
  static TraceLog* instance = new TraceLog();  // leaked: outlive all spans
  return *instance;
}

void TraceLog::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_) std::fclose(file_);
  file_ = std::fopen(path.c_str(), "w");
  NS_REQUIRE(file_ != nullptr, "trace: cannot open " << path);
  epoch_.restart();
  enabled_.store(true, std::memory_order_release);
}

void TraceLog::close() {
  enabled_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void TraceLog::record(const char* span, double start_s, double duration_s) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!file_) return;
  std::fprintf(file_, "{\"span\":\"%s\",\"start_s\":%.6f,\"dur_s\":%.6f}\n",
               span, start_s, duration_s);
}

}  // namespace ns::obs
