// Incremental training walkthrough (paper §3.5 + RQ3): start from a model
// library trained on a fraction of the data, then show how (a) more training
// data improves detection and (b) unmatched online patterns spawn new
// clusters instead of failing silently.
#include <cstdio>

#include "core/nodesentry.hpp"
#include "eval/metrics.hpp"
#include "sim/dataset_builder.hpp"

int main() {
  using namespace ns;

  SimDatasetConfig sim_config = d2_sim_config(1.0, /*seed=*/77);
  sim_config.anomaly_ratio = 0.01;
  const SimDataset sim = build_sim_dataset(sim_config);
  std::vector<std::vector<std::uint8_t>> masks;
  for (std::size_t n = 0; n < sim.data.num_nodes(); ++n)
    masks.push_back(evaluation_mask(sim.data.jobs[n],
                                    sim.data.num_timestamps(), sim.train_end,
                                    4));

  std::printf("%-18s %-10s %-8s %-8s %-8s %-12s\n", "training subset", "clusters",
              "F1", "AUC", "new", "fit time");
  for (const double fraction : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    NodeSentryConfig config;
    config.train_epochs = 8;
    config.learning_rate = 3e-3f;
    config.training_subsample = fraction;
    config.incremental_updates = true;  // adapt to unseen patterns online
    NodeSentry sentry(config);
    const auto fit = sentry.fit(sim.data, sim.train_end);
    const auto detect = sentry.detect();
    const DetectionMetrics metrics =
        aggregate_nodes(detect.detections, sim.data.labels, masks);
    std::printf("%15.0f%%   %-10zu %-8.3f %-8.3f %-8zu %6.1f s\n",
                fraction * 100, fit.num_clusters, metrics.f1, metrics.auc,
                detect.incremental_new_clusters, fit.total_seconds);
  }
  std::printf("\nsmaller training subsets leave more online patterns "
              "unmatched; incremental updates spawn new clusters for them "
              "(the 'new' column), keeping detection usable (§3.5).\n");
  return 0;
}
