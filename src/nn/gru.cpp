#include "nn/gru.hpp"

#include <vector>

#include "common/error.hpp"
#include "tensor/shape_check.hpp"

namespace ns {

GRUCell::GRUCell(std::size_t input, std::size_t hidden, Rng& rng)
    : input_(input),
      hidden_(hidden),
      wx_gates_(add_parameter(xavier_init(input, 2 * hidden, rng))),
      wh_gates_(add_parameter(xavier_init(hidden, 2 * hidden, rng))),
      b_gates_(add_parameter(Tensor(Shape{2 * hidden}))),
      wx_cand_(add_parameter(xavier_init(input, hidden, rng))),
      wh_cand_(add_parameter(xavier_init(hidden, hidden, rng))),
      b_cand_(add_parameter(Tensor(Shape{hidden}))) {}

Var GRUCell::initial_state(std::size_t batch) const {
  return Var::constant(Tensor(Shape{batch, hidden_}));
}

Var GRUCell::step(const Var& x, const Var& h) const {
  check_cols(x.value(), input_, "GRUCell::step");
  Var gates = vadd_rowvec(
      vadd(vmatmul(x, wx_gates_), vmatmul(h, wh_gates_)), b_gates_);
  const std::size_t H = hidden_;
  Var r = vsigmoid(vslice_cols(gates, 0, H));
  Var z = vsigmoid(vslice_cols(gates, H, 2 * H));
  Var candidate = vtanh(vadd_rowvec(
      vadd(vmatmul(x, wx_cand_), vmatmul(vmul(r, h), wh_cand_)), b_cand_));
  // h' = (1 - z) * candidate + z * h = candidate + z * (h - candidate).
  return vadd(candidate, vmul(z, vsub(h, candidate)));
}

GruEncoder::GruEncoder(std::size_t input, std::size_t hidden, Rng& rng)
    : cell_(input, hidden, rng) {
  register_child(&cell_);
}

Var GruEncoder::forward(const Var& x) const {
  const std::size_t steps = x.shape()[0];
  NS_REQUIRE(steps > 0, "GruEncoder needs at least one timestep");
  Var h = cell_.initial_state(1);
  std::vector<Var> outputs;
  outputs.reserve(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    h = cell_.step(vslice_rows(x, t, t + 1), h);
    outputs.push_back(h);
  }
  return vconcat_rows(outputs);
}

Var GruEncoder::encode(const Var& x) const {
  const std::size_t steps = x.shape()[0];
  NS_REQUIRE(steps > 0, "GruEncoder needs at least one timestep");
  Var h = cell_.initial_state(1);
  for (std::size_t t = 0; t < steps; ++t)
    h = cell_.step(vslice_rows(x, t, t + 1), h);
  return h;
}

}  // namespace ns
