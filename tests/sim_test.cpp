#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "sim/dataset_builder.hpp"
#include "sim/faults.hpp"
#include "sim/metrics.hpp"
#include "sim/scheduler.hpp"
#include "sim/workload.hpp"

namespace ns {
namespace {

constexpr std::size_t sidx(Signal s) { return static_cast<std::size_t>(s); }

TEST(Workload, PlanIsDeterministicPerSeed) {
  Rng a(5), b(5);
  const auto plan_a = make_workload_plan(WorkloadType::kComputeBound, a);
  const auto plan_b = make_workload_plan(WorkloadType::kComputeBound, b);
  ASSERT_EQ(plan_a.phases.size(), plan_b.phases.size());
  EXPECT_EQ(plan_a.phase_ends, plan_b.phase_ends);
  for (std::size_t p = 0; p < plan_a.phases.size(); ++p)
    EXPECT_EQ(plan_a.phases[p].base, plan_b.phases[p].base);
}

TEST(Workload, AllTypesHaveValidPhases) {
  for (std::size_t ty = 0; ty < kNumWorkloadTypes; ++ty) {
    Rng rng(ty + 1);
    const auto plan =
        make_workload_plan(static_cast<WorkloadType>(ty), rng);
    ASSERT_FALSE(plan.phases.empty());
    ASSERT_EQ(plan.phases.size(), plan.phase_ends.size());
    EXPECT_NEAR(plan.phase_ends.back(), 1.0, 1e-9);
    for (std::size_t p = 1; p < plan.phase_ends.size(); ++p)
      EXPECT_GT(plan.phase_ends[p], plan.phase_ends[p - 1]);
  }
}

TEST(Workload, MultiPhaseJobsShowSubPatternShift) {
  Rng job_rng(7);
  const auto plan = make_workload_plan(WorkloadType::kMemoryBound, job_rng);
  ASSERT_GE(plan.phases.size(), 2u);
  // Memory-bound: early phase has high page faults, late phase high memory.
  Rng node_rng(8);
  const std::size_t len = 400;
  double early_mem = 0.0, late_mem = 0.0;
  for (std::size_t t = 0; t < 50; ++t)
    early_mem += evaluate_plan(plan, t, len, node_rng)[sidx(Signal::kMemUsed)];
  for (std::size_t t = len - 50; t < len; ++t)
    late_mem += evaluate_plan(plan, t, len, node_rng)[sidx(Signal::kMemUsed)];
  EXPECT_GT(late_mem, early_mem * 1.3);
}

TEST(Workload, SameJobSeedSimilarAcrossNodes) {
  // Two nodes running the same job (same plan) must produce correlated
  // signals; a different job type must not.
  Rng job_rng1(42), job_rng1b(42), job_rng2(43);
  const auto plan_a = make_workload_plan(WorkloadType::kComputeBound, job_rng1);
  const auto plan_a2 =
      make_workload_plan(WorkloadType::kComputeBound, job_rng1b);
  const auto plan_b = make_workload_plan(WorkloadType::kIoBound, job_rng2);
  Rng node1(1), node2(2), node3(3);
  const std::size_t len = 300;
  double diff_same = 0.0, diff_other = 0.0;
  for (std::size_t t = 0; t < len; ++t) {
    const auto s1 = evaluate_plan(plan_a, t, len, node1);
    const auto s2 = evaluate_plan(plan_a2, t, len, node2);
    const auto s3 = evaluate_plan(plan_b, t, len, node3);
    diff_same += std::abs(s1[sidx(Signal::kCpuUser)] - s2[sidx(Signal::kCpuUser)]);
    diff_other += std::abs(s1[sidx(Signal::kCpuUser)] - s3[sidx(Signal::kCpuUser)]);
  }
  EXPECT_LT(diff_same, diff_other * 0.5);
}

TEST(Workload, IdleIsQuiet) {
  Rng job_rng(9), node_rng(10);
  const auto plan = make_workload_plan(WorkloadType::kIdle, job_rng);
  for (std::size_t t = 0; t < 100; ++t) {
    const auto s = evaluate_plan(plan, t, 100, node_rng);
    EXPECT_LT(s[sidx(Signal::kCpuUser)], 0.15);
    EXPECT_LT(s[sidx(Signal::kNetRx)], 0.15);
  }
}

TEST(Workload, SignalsClampedToRange) {
  Rng job_rng(11), node_rng(12);
  const auto plan = make_workload_plan(WorkloadType::kNetworkHeavy, job_rng);
  for (std::size_t t = 0; t < 500; ++t)
    for (double v : evaluate_plan(plan, t, 500, node_rng)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.2);
    }
}

TEST(Scheduler, TimelinesFullyCovered) {
  SchedulerConfig config;
  config.num_nodes = 12;
  config.total_timestamps = 1000;
  Rng rng(13);
  const auto schedule = generate_schedule(config, rng);
  ASSERT_EQ(schedule.spans.size(), 12u);
  for (const auto& spans : schedule.spans) {
    std::size_t cursor = 0;
    for (const JobSpan& span : spans) {
      EXPECT_EQ(span.begin, cursor);
      cursor = span.end;
    }
    EXPECT_EQ(cursor, 1000u);
  }
}

TEST(Scheduler, MultiNodeJobsExist) {
  SchedulerConfig config;
  config.num_nodes = 16;
  config.total_timestamps = 2000;
  Rng rng(14);
  const auto schedule = generate_schedule(config, rng);
  std::size_t multi = 0;
  for (const auto& job : schedule.jobs)
    if (job.nodes.size() > 1) ++multi;
  EXPECT_GT(multi, 0u);
  // And all jobs respect the width cap.
  for (const auto& job : schedule.jobs)
    EXPECT_LE(job.nodes.size(), config.max_job_width);
}

TEST(Scheduler, IdleSpansAppear) {
  SchedulerConfig config;
  config.num_nodes = 8;
  config.total_timestamps = 1500;
  config.idle_probability = 0.5;
  Rng rng(15);
  const auto schedule = generate_schedule(config, rng);
  std::size_t idle = 0;
  for (const auto& spans : schedule.spans)
    for (const auto& span : spans)
      if (span.is_idle()) ++idle;
  EXPECT_GT(idle, 0u);
}

TEST(Scheduler, MostJobsShorterThanADay) {
  // Fig. 4: ~95% of job segments < 1 day. At 15 s sampling a day is 5760
  // steps; the default median (240) and sigma should keep the tail small.
  SchedulerConfig config;
  config.num_nodes = 16;
  config.total_timestamps = 20000;
  Rng rng(16);
  const auto schedule = generate_schedule(config, rng);
  ASSERT_GT(schedule.jobs.size(), 50u);
  std::size_t under_day = 0;
  for (const auto& job : schedule.jobs)
    if (job.duration() < 5760) ++under_day;
  const double fraction =
      static_cast<double>(under_day) / schedule.jobs.size();
  EXPECT_GT(fraction, 0.9);
}

TEST(Scheduler, DeterministicForSeed) {
  SchedulerConfig config;
  config.num_nodes = 6;
  config.total_timestamps = 800;
  Rng r1(17), r2(17);
  const auto a = generate_schedule(config, r1);
  const auto b = generate_schedule(config, r2);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].job_id, b.jobs[i].job_id);
    EXPECT_EQ(a.jobs[i].begin, b.jobs[i].begin);
    EXPECT_EQ(a.jobs[i].nodes, b.jobs[i].nodes);
  }
}

TEST(MetricCatalog, FanOutCounts) {
  MetricCatalogConfig config;
  config.cores = 4;
  config.nics = 2;
  config.disks = 2;
  config.derived_per_signal = 1;
  config.constant_metrics = 3;
  const auto catalog = build_metric_catalog(config);
  // 3 core signals x4 + 2 nic x2 + 2 disk x2 + 5 node x1 = 12+4+4+5 = 25
  // + 12 derived + 3 constants = 40.
  EXPECT_EQ(catalog.size(), 40u);
  // Semantic groups: 12 signals + 12 derived + 3 constants = 27.
  EXPECT_EQ(catalog_semantic_groups(catalog), 27u);
}

TEST(MetricCatalog, StableOrder) {
  MetricCatalogConfig config;
  const auto a = build_metric_catalog(config);
  const auto b = build_metric_catalog(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].meta.name, b[i].meta.name);
    EXPECT_EQ(a[i].gain, b[i].gain);
  }
}

TEST(Faults, PlanRespectsRegionAndBudget) {
  FaultPlanConfig config;
  config.region_begin = 1000;
  config.region_end = 3000;
  config.target_ratio = 0.01;
  Rng rng(18);
  const auto events = plan_faults(config, 10, rng);
  ASSERT_FALSE(events.empty());
  std::size_t points = 0;
  for (const auto& ev : events) {
    EXPECT_GE(ev.begin, 1000u);
    EXPECT_LE(ev.end, 3000u);
    EXPECT_LT(ev.node, 10u);
    points += ev.end - ev.begin;
  }
  const double ratio = static_cast<double>(points) / (2000.0 * 10.0);
  EXPECT_NEAR(ratio, 0.01, 0.005);
}

TEST(Faults, EventsPerNodeDisjoint) {
  FaultPlanConfig config;
  config.region_begin = 0;
  config.region_end = 5000;
  config.target_ratio = 0.02;
  Rng rng(19);
  const auto events = plan_faults(config, 4, rng);
  for (std::size_t i = 0; i < events.size(); ++i)
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      if (events[i].node != events[j].node) continue;
      const bool disjoint = events[i].end <= events[j].begin ||
                            events[j].end <= events[i].begin;
      EXPECT_TRUE(disjoint);
    }
}

TEST(Faults, EachTypePerturbsSignals) {
  for (std::size_t f = 0; f < kNumFaultTypes; ++f) {
    Rng job_rng(20), node_rng(21);
    const auto plan = make_workload_plan(WorkloadType::kComputeBound, job_rng);
    auto base = evaluate_plan(plan, 10, 100, node_rng);
    auto faulty = base;
    apply_fault(faulty, static_cast<FaultType>(f), 0.9, 1.0);
    double delta = 0.0;
    for (std::size_t s = 0; s < kNumSignals; ++s)
      delta += std::abs(faulty[s] - base[s]);
    EXPECT_GT(delta, 0.1) << fault_name(static_cast<FaultType>(f));
  }
}

TEST(Faults, MemoryLeakRampsWithProgress) {
  std::array<double, kNumSignals> early{}, late{};
  early.fill(0.3);
  late.fill(0.3);
  apply_fault(early, FaultType::kMemoryLeak, 0.05, 1.0);
  apply_fault(late, FaultType::kMemoryLeak, 0.95, 1.0);
  EXPECT_GT(late[sidx(Signal::kMemUsed)], early[sidx(Signal::kMemUsed)]);
}

TEST(DatasetBuilder, D1SimShapeAndLabels) {
  SimDatasetConfig config = d1_sim_config(0.25);
  const SimDataset ds = build_sim_dataset(config);
  ds.data.validate();
  EXPECT_EQ(ds.data.num_nodes(), config.scheduler.num_nodes);
  EXPECT_GT(ds.data.num_metrics(), 30u);
  EXPECT_GT(ds.sched_jobs.size(), 10u);
  // Labels only in the test region.
  for (std::size_t n = 0; n < ds.data.num_nodes(); ++n)
    for (std::size_t t = 0; t < ds.train_end; ++t)
      EXPECT_EQ(ds.data.labels[n][t], 0);
  // And some labels exist.
  std::size_t anomalies = 0;
  for (const auto& labels : ds.data.labels)
    for (auto l : labels) anomalies += l;
  EXPECT_GT(anomalies, 0u);
}

TEST(DatasetBuilder, AnomalyRatioApproximatesTarget) {
  SimDatasetConfig config = d1_sim_config(0.5);
  config.anomaly_ratio = 0.002;
  const SimDataset ds = build_sim_dataset(config);
  std::size_t anomalies = 0, test_points = 0;
  for (const auto& labels : ds.data.labels) {
    for (std::size_t t = ds.train_end; t < labels.size(); ++t) {
      anomalies += labels[t];
      ++test_points;
    }
  }
  const double ratio = static_cast<double>(anomalies) / test_points;
  EXPECT_NEAR(ratio, 0.002, 0.0015);
}

TEST(DatasetBuilder, MissingValuesInjected) {
  SimDatasetConfig config = d2_sim_config(0.5);
  config.missing_rate = 0.01;
  const SimDataset ds = build_sim_dataset(config);
  std::size_t missing = 0;
  for (const auto& node : ds.data.nodes)
    for (const auto& series : node.values)
      for (float v : series) missing += std::isnan(v) ? 1 : 0;
  EXPECT_GT(missing, 0u);
}

TEST(DatasetBuilder, DeterministicForSeed) {
  const SimDataset a = build_sim_dataset(d2_sim_config(0.25, 77));
  const SimDataset b = build_sim_dataset(d2_sim_config(0.25, 77));
  ASSERT_EQ(a.data.num_nodes(), b.data.num_nodes());
  for (std::size_t n = 0; n < a.data.num_nodes(); ++n)
    for (std::size_t m = 0; m < a.data.num_metrics(); ++m)
      for (std::size_t t = 0; t < a.data.num_timestamps(); ++t) {
        const float va = a.data.nodes[n].values[m][t];
        const float vb = b.data.nodes[n].values[m][t];
        if (std::isnan(va)) {
          EXPECT_TRUE(std::isnan(vb));
        } else {
          ASSERT_EQ(va, vb) << n << ' ' << m << ' ' << t;
        }
      }
}

TEST(DatasetBuilder, SameJobNodesCorrelate) {
  // Characteristic 2: nodes of one multi-node job show similar patterns.
  SimDatasetConfig config = d1_sim_config(0.5);
  config.missing_rate = 0.0;
  const SimDataset ds = build_sim_dataset(config);
  // Find a multi-node job of decent length.
  const SchedJob* target = nullptr;
  for (const auto& job : ds.sched_jobs)
    if (job.nodes.size() >= 2 && job.duration() >= 60) {
      target = &job;
      break;
    }
  ASSERT_NE(target, nullptr);
  // Compare the cpu_user metric (metric 0 is a per-core cpu copy).
  const auto& n0 = ds.data.nodes[target->nodes[0]].values[0];
  const auto& n1 = ds.data.nodes[target->nodes[1]].values[0];
  double corr_num = 0.0, va = 0.0, vb = 0.0, ma = 0.0, mb = 0.0;
  const std::size_t len = target->duration();
  for (std::size_t t = target->begin; t < target->end; ++t) {
    ma += n0[t];
    mb += n1[t];
  }
  ma /= len;
  mb /= len;
  for (std::size_t t = target->begin; t < target->end; ++t) {
    corr_num += (n0[t] - ma) * (n1[t] - mb);
    va += (n0[t] - ma) * (n0[t] - ma);
    vb += (n1[t] - mb) * (n1[t] - mb);
  }
  const double corr = corr_num / std::sqrt(va * vb);
  EXPECT_GT(corr, 0.5);
}

TEST(DatasetBuilder, PresetsDiffer) {
  const auto d1 = d1_sim_config();
  const auto d2 = d2_sim_config();
  EXPECT_GT(d1.scheduler.num_nodes, d2.scheduler.num_nodes);
  EXPECT_GT(d1.anomaly_ratio, d2.anomaly_ratio);
  const auto dep = deployment_sim_config();
  EXPECT_GT(dep.anomaly_ratio, d2.anomaly_ratio);
}

}  // namespace
}  // namespace ns
