file(REMOVE_RECURSE
  "libns_io.a"
)
