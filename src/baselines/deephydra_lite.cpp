#include "baselines/deephydra_lite.hpp"

#include <algorithm>
#include <limits>

#include "cluster/dbscan.hpp"
#include "cluster/distance.hpp"
#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "nn/autoencoder.hpp"
#include "nn/optim.hpp"

namespace ns {
namespace {

// Mean latent vector of a window under the trained encoder's bottleneck.
std::vector<float> window_latent(const Mlp& encoder,
                                 const MtsDataset& dataset, std::size_t node,
                                 std::size_t begin, std::size_t end,
                                 std::size_t latent) {
  const std::size_t M = dataset.num_metrics();
  Tensor x(Shape{end - begin, M});
  for (std::size_t t = begin; t < end; ++t)
    for (std::size_t m = 0; m < M; ++m)
      x.at(t - begin, m) = dataset.nodes[node].values[m][t];
  const Var z = vrelu(encoder.forward(Var::constant(x)));
  std::vector<float> mean_latent(latent, 0.0f);
  for (std::size_t t = 0; t < end - begin; ++t)
    for (std::size_t d = 0; d < latent; ++d)
      mean_latent[d] += z.value().at(t, d);
  for (float& v : mean_latent) v /= static_cast<float>(end - begin);
  return mean_latent;
}

}  // namespace

DetectorReport DeepHydraLite::run(const MtsDataset& processed,
                                  std::size_t train_end) {
  DetectorReport report;
  const std::size_t N = processed.num_nodes();
  const std::size_t T = processed.num_timestamps();
  const std::size_t M = processed.num_metrics();
  const std::size_t W = config_.window;
  Stopwatch train_sw;
  Rng rng(config_.seed);

  // 1. Train a global bottleneck autoencoder (explicit encoder/decoder so
  // the encoder half can be reused for latent extraction).
  Mlp encoder({M, config_.hidden, config_.latent}, rng);
  Mlp decoder({config_.latent, config_.hidden, M}, rng);
  std::vector<Var> params = encoder.parameters();
  {
    const auto dec = decoder.parameters();
    params.insert(params.end(), dec.begin(), dec.end());
  }
  Adam optimizer(params, config_.learning_rate);
  const std::size_t total_rows = N * train_end;
  const std::size_t stride_rows =
      std::max<std::size_t>(1, total_rows / config_.max_train_rows);
  std::vector<float> pool;
  std::size_t pool_rows = 0;
  for (std::size_t r = 0; r < total_rows; r += stride_rows) {
    const std::size_t n = r / train_end;
    const std::size_t t = r % train_end;
    for (std::size_t m = 0; m < M; ++m)
      pool.push_back(processed.nodes[n].values[m][t]);
    ++pool_rows;
  }
  const std::size_t batch = 128;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (std::size_t lo = 0; lo + 2 <= pool_rows; lo += batch) {
      const std::size_t hi = std::min(pool_rows, lo + batch);
      Tensor x(Shape{hi - lo, M},
               std::vector<float>(pool.begin() + static_cast<std::ptrdiff_t>(lo * M),
                                  pool.begin() + static_cast<std::ptrdiff_t>(hi * M)));
      optimizer.zero_grad();
      Var recon = decoder.forward(vrelu(encoder.forward(Var::constant(x))));
      Var loss = vmse_loss(recon, x);
      loss.backward();
      optimizer.step();
    }
  }
  encoder.set_training(false);

  // 2. Latents of all training windows, clustered with DBSCAN.
  std::vector<std::vector<float>> train_latents;
  for (std::size_t n = 0; n < N; ++n)
    for (std::size_t begin = 0; begin + W <= train_end;
         begin += config_.stride)
      train_latents.push_back(window_latent(encoder, processed, n, begin,
                                            begin + W, config_.latent));
  // Adaptive eps from a subsample of pairwise distances.
  std::vector<float> pairwise;
  Rng pair_rng(config_.seed + 1);
  for (int s = 0; s < 2000 && train_latents.size() >= 2; ++s) {
    const auto i = static_cast<std::size_t>(pair_rng.uniform_int(
        0, static_cast<std::int64_t>(train_latents.size()) - 1));
    const auto j = static_cast<std::size_t>(pair_rng.uniform_int(
        0, static_cast<std::int64_t>(train_latents.size()) - 1));
    if (i == j) continue;
    pairwise.push_back(
        static_cast<float>(euclidean(train_latents[i], train_latents[j])));
  }
  const double eps =
      pairwise.empty() ? 1.0 : config_.eps_factor * median(pairwise);
  const DbscanResult clusters =
      dbscan(train_latents, std::max(1e-6, eps), config_.min_points);
  // Core reference set: all non-noise training latents.
  std::vector<std::vector<float>> reference;
  for (std::size_t i = 0; i < train_latents.size(); ++i)
    if (clusters.labels[i] != kDbscanNoise)
      reference.push_back(train_latents[i]);
  if (reference.empty()) reference = train_latents;  // degenerate fallback
  report.train_seconds = train_sw.elapsed_s();

  // 3. Detection: distance of each test window's latent to the nearest
  // reference latent, smeared over the window.
  Stopwatch detect_sw;
  report.detections.assign(N, NodeDetection{});
  parallel_for(0, N, [&](std::size_t n) {
    NodeDetection& det = report.detections[n];
    det.scores.assign(T, 0.0f);
    std::vector<float> counts(T, 0.0f);
    for (std::size_t begin = train_end; begin < T; begin += config_.stride) {
      const std::size_t end = std::min(T, begin + W);
      if (end - begin < 8) break;
      const auto latent = window_latent(encoder, processed, n, begin, end,
                                        config_.latent);
      double best = std::numeric_limits<double>::infinity();
      for (const auto& ref : reference)
        best = std::min(best, squared_euclidean(latent, ref));
      const float score = static_cast<float>(std::sqrt(best));
      for (std::size_t t = begin; t < end; ++t) {
        det.scores[t] += score;
        counts[t] += 1.0f;
      }
    }
    for (std::size_t t = train_end; t < T; ++t)
      if (counts[t] > 0.0f) det.scores[t] /= counts[t];
    det.predictions = baseline_threshold(det.scores, train_end, T);
  });
  report.detect_seconds = detect_sw.elapsed_s();
  return report;
}

}  // namespace ns
