// Parameterized property-style tests for cross-module invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "core/nodesentry.hpp"
#include "eval/metrics.hpp"
#include "nn/moe.hpp"
#include "nn/transformer.hpp"
#include "sim/faults.hpp"
#include "sim/workload.hpp"
#include "ts/preprocess.hpp"

namespace ns {
namespace {

// ---------------------------------------------------------------- MoE

class MoeParamTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(MoeParamTest, RoutingInvariants) {
  const auto [experts, top_k] = GetParam();
  Rng rng(experts * 10 + top_k);
  MoELayer moe(6, 12, experts, top_k, rng);
  Var x = Var::constant(Tensor::randn(Shape{17, 6}, rng));
  Var y = moe.forward(x);
  // Output shape preserved; every token routed to exactly top_k experts.
  EXPECT_EQ(y.shape(), (Shape{17, 6}));
  const auto& load = moe.last_expert_load();
  EXPECT_EQ(std::accumulate(load.begin(), load.end(), 0u), 17u * top_k);
  // Aux loss is >= 1 (its minimum under perfect balance is N * (1/N) = 1
  // only when gate mass matches routing; in general it is positive).
  moe.forward(x);
  EXPECT_GT(moe.aux_load_balance_loss().value().at(0), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    ExpertTopKGrid, MoeParamTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{2, 1},
                      std::pair<std::size_t, std::size_t>{3, 1},
                      std::pair<std::size_t, std::size_t>{3, 2},
                      std::pair<std::size_t, std::size_t>{3, 3},
                      std::pair<std::size_t, std::size_t>{5, 2}));

// ------------------------------------------------------------ Transformer

class TransformerDepthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TransformerDepthTest, ForwardFiniteAtAnyDepth) {
  Rng rng(GetParam());
  TransformerConfig config;
  config.input_dim = 5;
  config.d_model = 12;
  config.num_heads = 2;
  config.num_layers = GetParam();
  config.ffn_hidden = 16;
  TransformerReconstructor model(config, rng);
  Var x = Var::constant(Tensor::randn(Shape{9, 5}, rng));
  Var y = model.forward(x, rng);
  for (float v : y.value().flat()) EXPECT_TRUE(std::isfinite(v));
  EXPECT_EQ(model.expert_loads().size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Depths, TransformerDepthTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

// -------------------------------------------------------------- k-sigma

class KSigmaTest : public ::testing::TestWithParam<double> {};

TEST_P(KSigmaTest, NeverFlagsConstantSeries) {
  const std::vector<float> scores(300, 2.5f);
  const auto flags = ksigma_flags(scores, 20, 300, 50, GetParam());
  for (auto f : flags) EXPECT_EQ(f, 0);
}

TEST_P(KSigmaTest, FlagCountMonotoneInK) {
  Rng rng(7);
  std::vector<float> scores(500);
  for (auto& s : scores) s = static_cast<float>(std::abs(rng.gaussian()));
  const double k = GetParam();
  const auto flags_k = ksigma_flags(scores, 20, 500, 60, k);
  const auto flags_k2 = ksigma_flags(scores, 20, 500, 60, k + 1.0);
  const auto count = [](const std::vector<std::uint8_t>& f) {
    return std::accumulate(f.begin(), f.end(), 0u);
  };
  EXPECT_GE(count(flags_k), count(flags_k2));
}

INSTANTIATE_TEST_SUITE_P(Sigmas, KSigmaTest,
                         ::testing::Values(1.0, 2.0, 3.0, 4.0));

// ----------------------------------------------------------- point adjust

class PointAdjustPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PointAdjustPropertyTest, AdjustmentNeverRemovesPredictions) {
  Rng rng(GetParam());
  const std::size_t n = 200;
  std::vector<std::uint8_t> labels(n, 0), preds(n, 0), mask(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = rng.bernoulli(0.1);
    preds[i] = rng.bernoulli(0.1);
    mask[i] = rng.bernoulli(0.9);
  }
  const auto adjusted = point_adjust(preds, labels, mask);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_GE(adjusted[i], preds[i]) << "adjustment removed a prediction";
  // Expansion only happens on labeled points.
  for (std::size_t i = 0; i < n; ++i)
    if (adjusted[i] && !preds[i]) EXPECT_TRUE(labels[i]);
}

TEST_P(PointAdjustPropertyTest, MetricsBoundedAndConsistent) {
  Rng rng(GetParam() + 100);
  const std::size_t n = 150;
  std::vector<std::uint8_t> labels(n, 0), preds(n, 0), mask(n, 1);
  std::vector<float> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = rng.bernoulli(0.08);
    preds[i] = rng.bernoulli(0.15);
    scores[i] = static_cast<float>(rng.uniform());
  }
  const auto m = node_prf(preds, labels, mask);
  EXPECT_GE(m.precision, 0.0);
  EXPECT_LE(m.precision, 1.0);
  EXPECT_GE(m.recall, 0.0);
  EXPECT_LE(m.recall, 1.0);
  EXPECT_LE(m.f1, 1.0);
  const double auc = node_auc(scores, labels, mask);
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointAdjustPropertyTest,
                         ::testing::Range(1, 6));

// ------------------------------------------------------------ faults

class FaultSignatureTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FaultSignatureTest, ImpostorDiffersFromRunningWorkload) {
  const FaultType fault = static_cast<FaultType>(GetParam());
  for (std::size_t w = 0; w < kNumWorkloadTypes; ++w) {
    const WorkloadType running = static_cast<WorkloadType>(w);
    const auto signature = fault_signature(fault, running);
    // The impostor must differ measurably from the canonical signature of
    // the running archetype itself (otherwise the fault is unobservable).
    Rng job_rng(1), node_rng(2);
    const auto plan = make_workload_plan(running, job_rng);
    const auto normal = evaluate_plan(plan, 10, 100, node_rng);
    double diff = 0.0;
    for (std::size_t s = 0; s < kNumSignals; ++s)
      diff += std::abs(signature[s] - normal[s]);
    EXPECT_GT(diff, 0.3) << fault_name(fault) << " during "
                         << workload_name(running);
    // And every signature level must be a plausible utilization value.
    for (double v : signature) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST_P(FaultSignatureTest, ApplyBlendsTowardSignature) {
  const FaultType fault = static_cast<FaultType>(GetParam());
  std::array<double, kNumSignals> s{};
  s.fill(0.5);
  const auto target = fault_signature(fault, WorkloadType::kIdle);
  apply_fault(s, fault, 0.99, 1.0, WorkloadType::kIdle);
  for (std::size_t i = 0; i < kNumSignals; ++i)
    EXPECT_NEAR(s[i], target[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllFaults, FaultSignatureTest,
                         ::testing::Range<std::size_t>(0, kNumFaultTypes));

// ------------------------------------------------------- standardization

class TrimSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(TrimSweepTest, OutliersNeverSkewTrimmedMean) {
  std::vector<float> xs(200, 10.0f);
  xs.push_back(1e6f);
  xs.push_back(-1e6f);
  const auto m = trimmed_moments(xs, GetParam());
  EXPECT_NEAR(m.mean, 10.0, 0.5);
}

INSTANTIATE_TEST_SUITE_P(TrimLevels, TrimSweepTest,
                         ::testing::Values(0.01, 0.05, 0.1, 0.25));

// ---------------------------------------------------------- median filter

TEST(CausalMedianFilter, RemovesSingletonSpikePreservesPlateau) {
  std::vector<float> scores(50, 1.0f);
  scores[20] = 100.0f;                          // singleton spike
  for (std::size_t i = 30; i < 40; ++i) scores[i] = 50.0f;  // real plateau
  const auto smoothed = causal_median_filter(scores, 3);
  EXPECT_LT(smoothed[20], 2.0f);
  EXPECT_LT(smoothed[21], 2.0f);
  // The plateau survives (from its second point on, the median is 50).
  EXPECT_GT(smoothed[32], 40.0f);
}

TEST(CausalMedianFilter, WidthOneIsIdentity) {
  Rng rng(3);
  std::vector<float> scores(30);
  for (auto& s : scores) s = static_cast<float>(rng.uniform());
  EXPECT_EQ(causal_median_filter(scores, 1), scores);
}

}  // namespace
}  // namespace ns
