#include "nn/autoencoder.hpp"

#include "common/error.hpp"

namespace ns {

Mlp::Mlp(const std::vector<std::size_t>& dims, Rng& rng) {
  NS_REQUIRE(dims.size() >= 2, "Mlp needs at least input and output dims");
  layers_.reserve(dims.size() - 1);
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    register_child(layers_.back().get());
  }
}

Var Mlp::forward(const Var& x) const {
  Var h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->forward(h);
    if (i + 1 < layers_.size()) h = vrelu(h);
  }
  return h;
}

DenseAutoencoder::DenseAutoencoder(std::size_t input, std::size_t hidden,
                                   std::size_t bottleneck, Rng& rng)
    : encoder_({input, hidden, bottleneck}, rng),
      decoder_({bottleneck, hidden, input}, rng) {
  register_child(&encoder_);
  register_child(&decoder_);
}

Var DenseAutoencoder::forward(const Var& x) const {
  return decoder_.forward(vrelu(encoder_.forward(x)));
}

VariationalAutoencoder::VariationalAutoencoder(std::size_t input,
                                               std::size_t hidden,
                                               std::size_t latent, Rng& rng)
    : latent_(latent),
      encoder_({input, hidden}, rng),
      mu_head_(hidden, latent, rng),
      logvar_head_(hidden, latent, rng),
      decoder_({latent, hidden, input}, rng) {
  register_child(&encoder_);
  register_child(&mu_head_);
  register_child(&logvar_head_);
  register_child(&decoder_);
}

VariationalAutoencoder::Output VariationalAutoencoder::forward(
    const Var& x, Rng& rng) const {
  Var h = vrelu(encoder_.forward(x));
  Var mu = mu_head_.forward(h);
  Var logvar = logvar_head_.forward(h);
  // z = mu + eps * exp(0.5 * logvar), eps ~ N(0, I) held constant.
  const std::size_t rows = mu.shape()[0];
  Tensor eps = Tensor::randn(Shape{rows, latent_}, rng);
  Var std_dev = vexp(vscale(logvar, 0.5f));
  Var z = vadd(mu, vmul(Var::constant(std::move(eps)), std_dev));
  return {decoder_.forward(z), mu, logvar};
}

Var VariationalAutoencoder::loss(const Output& out, const Tensor& target,
                                 float beta) {
  Var recon = vmse_loss(out.reconstruction, target);
  // KL(q || N(0,I)) = -0.5 * mean(1 + logvar - mu^2 - exp(logvar)).
  Var kl_terms = vsub(vadd_scalar(out.logvar, 1.0f),
                      vadd(vmul(out.mu, out.mu), vexp(out.logvar)));
  Var kl = vscale(vmean(kl_terms), -0.5f);
  return vadd(recon, vscale(kl, beta));
}

}  // namespace ns
