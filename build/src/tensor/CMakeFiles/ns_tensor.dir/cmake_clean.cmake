file(REMOVE_RECURSE
  "CMakeFiles/ns_tensor.dir/autograd.cpp.o"
  "CMakeFiles/ns_tensor.dir/autograd.cpp.o.d"
  "CMakeFiles/ns_tensor.dir/tensor.cpp.o"
  "CMakeFiles/ns_tensor.dir/tensor.cpp.o.d"
  "libns_tensor.a"
  "libns_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
