#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/gru.hpp"
#include "nn/optim.hpp"
#include "nn/schedule.hpp"

namespace ns {
namespace {

TEST(Gru, StepShapes) {
  Rng rng(1);
  GRUCell cell(3, 5, rng);
  Var h = cell.initial_state(2);
  Var x = Var::constant(Tensor::randn(Shape{2, 3}, rng));
  Var next = cell.step(x, h);
  EXPECT_EQ(next.shape(), (Shape{2, 5}));
}

TEST(Gru, HiddenStaysBounded) {
  // tanh candidate + convex gate update keeps |h| <= 1.
  Rng rng(2);
  GRUCell cell(2, 4, rng);
  Var h = cell.initial_state(1);
  for (int t = 0; t < 50; ++t) {
    Var x = Var::constant(Tensor::randn(Shape{1, 2}, rng, 10.0f));
    h = cell.step(x, h);
    for (float v : h.value().flat()) {
      EXPECT_LE(std::abs(v), 1.0f + 1e-5f);
    }
  }
}

TEST(Gru, EncoderOutputsPerStepHidden) {
  Rng rng(3);
  GruEncoder encoder(3, 6, rng);
  Var x = Var::constant(Tensor::randn(Shape{7, 3}, rng));
  Var all = encoder.forward(x);
  EXPECT_EQ(all.shape(), (Shape{7, 6}));
  Var last = encoder.encode(x);
  EXPECT_EQ(last.shape(), (Shape{1, 6}));
  // encode() equals the last row of forward().
  for (std::size_t j = 0; j < 6; ++j)
    EXPECT_FLOAT_EQ(last.value().at(0, j), all.value().at(6, j));
}

TEST(Gru, LearnsSequenceSummary) {
  // Predict the mean of a short sequence from the final hidden state.
  Rng rng(4);
  GruEncoder encoder(1, 8, rng);
  Linear head(8, 1, rng);
  std::vector<Var> params = encoder.parameters();
  const auto head_params = head.parameters();
  params.insert(params.end(), head_params.begin(), head_params.end());
  Adam opt(params, 1e-2f);
  float last_loss = 1e9f;
  for (int step = 0; step < 200; ++step) {
    Rng data_rng(step);
    Tensor seq(Shape{6, 1});
    double mean = 0.0;
    for (std::size_t t = 0; t < 6; ++t) {
      seq.at(t, 0) = static_cast<float>(data_rng.uniform(-1.0, 1.0));
      mean += seq.at(t, 0) / 6.0;
    }
    Tensor target(Shape{1, 1}, {static_cast<float>(mean)});
    opt.zero_grad();
    Var pred = head.forward(encoder.encode(Var::constant(seq)));
    Var loss = vmse_loss(pred, target);
    loss.backward();
    opt.step();
    last_loss = loss.value().at(0);
  }
  EXPECT_LT(last_loss, 0.05f);
}

TEST(Schedule, ConstantIsConstant) {
  ConstantLr lr(0.1f);
  EXPECT_EQ(lr.rate(0), 0.1f);
  EXPECT_EQ(lr.rate(1000), 0.1f);
}

TEST(Schedule, WarmupCosineShape) {
  WarmupCosineLr lr(1.0f, 10, 110, 0.1f);
  // Rises during warmup.
  EXPECT_LT(lr.rate(0), lr.rate(5));
  EXPECT_LT(lr.rate(5), lr.rate(9));
  EXPECT_NEAR(lr.rate(9), 1.0f, 1e-6);
  // Decays after warmup, approaching the floor.
  EXPECT_GT(lr.rate(20), lr.rate(60));
  EXPECT_GT(lr.rate(60), lr.rate(105));
  EXPECT_NEAR(lr.rate(109), 0.1f, 0.01f);
  // Clamped beyond total.
  EXPECT_NEAR(lr.rate(10000), 0.1f, 0.01f);
}

TEST(Schedule, WarmupCosineRejectsBadRange) {
  EXPECT_THROW(WarmupCosineLr(1.0f, 100, 50), InvalidArgument);
}

TEST(Schedule, StepDecay) {
  StepDecayLr lr(1.0f, 0.5f, 10);
  EXPECT_FLOAT_EQ(lr.rate(0), 1.0f);
  EXPECT_FLOAT_EQ(lr.rate(9), 1.0f);
  EXPECT_FLOAT_EQ(lr.rate(10), 0.5f);
  EXPECT_FLOAT_EQ(lr.rate(25), 0.25f);
}

TEST(ClipGrad, ScalesDownLargeGradients) {
  Var w = Var::leaf(Tensor(Shape{2}, {3.0f, 4.0f}), true);
  Var loss = vscale(vsum(vmul(w, w)), 10.0f);  // grad = 20*w = (60, 80)
  w.zero_grad();
  loss.backward();
  std::vector<Var> params{w};
  const double norm = clip_gradient_norm(params, 10.0);
  EXPECT_NEAR(norm, 100.0, 1e-3);  // sqrt(60^2+80^2)
  double clipped = 0.0;
  for (float g : w.grad().flat()) clipped += static_cast<double>(g) * g;
  EXPECT_NEAR(std::sqrt(clipped), 10.0, 1e-3);
}

TEST(ClipGrad, SmallGradientsUntouched) {
  Var w = Var::leaf(Tensor(Shape{1}, {1.0f}), true);
  Var loss = vmul(w, w);
  w.zero_grad();
  loss.backward();
  std::vector<Var> params{w};
  clip_gradient_norm(params, 100.0);
  EXPECT_NEAR(w.grad().at(0), 2.0f, 1e-5);
}

}  // namespace
}  // namespace ns
