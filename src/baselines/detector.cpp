#include "baselines/detector.hpp"

#include "common/mathutil.hpp"
#include "core/nodesentry.hpp"

namespace ns {

std::vector<std::uint8_t> baseline_threshold(const std::vector<float>& scores,
                                             std::size_t train_end,
                                             std::size_t total) {
  const NodeSentryConfig defaults;  // same thresholding knobs as NodeSentry
  const std::vector<float> smoothed =
      causal_median_filter(scores, defaults.score_median_window);
  const std::vector<std::uint8_t> base =
      ksigma_flags(smoothed, train_end, total, defaults.threshold_window,
                   defaults.k_sigma, defaults.sigma_floor_fraction);
  double med = 0.0;
  if (total > train_end) {
    std::vector<float> test(smoothed.begin() +
                                static_cast<std::ptrdiff_t>(train_end),
                            smoothed.end());
    med = std::max(1e-9, median(std::move(test)));
  }
  std::vector<std::uint8_t> flags(total, 0);
  for (std::size_t t = train_end; t < total; ++t) {
    const bool above_floor =
        smoothed[t] >= defaults.min_score_factor * med;
    const bool hard_hit = smoothed[t] >= defaults.hard_score_factor * med;
    if ((base[t] && above_floor) || hard_hit) flags[t] = 1;
  }
  return flags;
}

}  // namespace ns
