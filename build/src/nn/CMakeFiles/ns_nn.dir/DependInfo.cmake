
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cpp" "src/nn/CMakeFiles/ns_nn.dir/attention.cpp.o" "gcc" "src/nn/CMakeFiles/ns_nn.dir/attention.cpp.o.d"
  "/root/repo/src/nn/autoencoder.cpp" "src/nn/CMakeFiles/ns_nn.dir/autoencoder.cpp.o" "gcc" "src/nn/CMakeFiles/ns_nn.dir/autoencoder.cpp.o.d"
  "/root/repo/src/nn/gru.cpp" "src/nn/CMakeFiles/ns_nn.dir/gru.cpp.o" "gcc" "src/nn/CMakeFiles/ns_nn.dir/gru.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/nn/CMakeFiles/ns_nn.dir/lstm.cpp.o" "gcc" "src/nn/CMakeFiles/ns_nn.dir/lstm.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/ns_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/ns_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/moe.cpp" "src/nn/CMakeFiles/ns_nn.dir/moe.cpp.o" "gcc" "src/nn/CMakeFiles/ns_nn.dir/moe.cpp.o.d"
  "/root/repo/src/nn/positional.cpp" "src/nn/CMakeFiles/ns_nn.dir/positional.cpp.o" "gcc" "src/nn/CMakeFiles/ns_nn.dir/positional.cpp.o.d"
  "/root/repo/src/nn/schedule.cpp" "src/nn/CMakeFiles/ns_nn.dir/schedule.cpp.o" "gcc" "src/nn/CMakeFiles/ns_nn.dir/schedule.cpp.o.d"
  "/root/repo/src/nn/transformer.cpp" "src/nn/CMakeFiles/ns_nn.dir/transformer.cpp.o" "gcc" "src/nn/CMakeFiles/ns_nn.dir/transformer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/ns_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
