// Relaxed-arithmetic serve path tests (DESIGN.md §16): runtime kernel
// dispatch, FastKernelScope nesting semantics, int8 quantization
// round-trips, ScoringPlan vs canonical-model equivalence (the ULP
// harness), the strict-replay bitwise regression pin, the epsilon-band
// property on flag disagreements, and the score-timeline reallocation
// bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/nodesentry.hpp"
#include "nn/scoring.hpp"
#include "nn/transformer.hpp"
#include "obs/registry.hpp"
#include "serve/engine.hpp"
#include "serve/model_registry.hpp"
#include "serve/replay.hpp"
#include "sim/dataset_builder.hpp"
#include "tensor/kernels.hpp"
#include "tensor/quant.hpp"

namespace ns {
namespace fs = std::filesystem;
namespace {

Tensor random_matrix(std::size_t rows, std::size_t cols, Rng& rng,
                     float scale = 1.0f) {
  Tensor t(Shape{rows, cols});
  for (std::size_t i = 0; i < t.numel(); ++i)
    t.data()[i] = scale * static_cast<float>(rng.gaussian());
  return t;
}

// ---------------------------------------------------------------------------
// Runtime dispatch + FastKernelScope semantics

TEST(Dispatch, TierIsStableAndNamed) {
  const KernelTier tier = kernel_dispatch_tier();
  EXPECT_EQ(tier, kernel_dispatch_tier());  // pure CPU probe, never changes
  const std::string name = kernel_tier_name(tier);
  EXPECT_TRUE(name == "scalar" || name == "neon" || name == "avx2_fma");
#if defined(__x86_64__) || defined(_M_X64)
  EXPECT_NE(tier, KernelTier::kNeon);
#endif
}

TEST(Dispatch, FastKernelsRequireScopeOptIn) {
  EXPECT_FALSE(fast_kernels_enabled());
  {
    FastKernelScope fast;
    // Inside a scope the fast tier is legal exactly when the host has one.
    EXPECT_EQ(fast_kernels_enabled(),
              kernel_dispatch_tier() != KernelTier::kScalar);
    {
      FastKernelScope nested;  // nesting is counted, not flag-toggled
      EXPECT_EQ(fast_kernels_enabled(),
                kernel_dispatch_tier() != KernelTier::kScalar);
    }
    EXPECT_EQ(fast_kernels_enabled(),
              kernel_dispatch_tier() != KernelTier::kScalar);
  }
  EXPECT_FALSE(fast_kernels_enabled());
}

TEST(Dispatch, ScopeIsThreadLocal) {
  FastKernelScope fast;
  bool other_thread_enabled = true;
  std::thread([&] { other_thread_enabled = fast_kernels_enabled(); }).join();
  EXPECT_FALSE(other_thread_enabled);
}

#if !defined(__SANITIZE_THREAD__)
TEST(DispatchDeathTest, CrossThreadDestructionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Destroying a scope on a thread that never constructed one underflows
  // the thread-local depth — documented as a usage bug that aborts loudly
  // instead of silently enabling fast kernels for unrelated code.
  EXPECT_DEATH(
      {
        FastKernelScope* leaked = nullptr;
        std::thread([&] { leaked = new FastKernelScope(); }).join();
        delete leaked;  // this thread's depth goes to -1
      },
      "underflow");
}
#endif

// ---------------------------------------------------------------------------
// int8 per-channel quantization round-trips

TEST(Quantization, DequantizationErrorWithinHalfStep) {
  Rng rng(17);
  const Tensor w = random_matrix(37, 23, rng, 2.0f);
  const QuantizedMatrix qw = quantize_per_channel(w);
  ASSERT_EQ(qw.scales.size(), 23u);
  Tensor back(Shape{37, 23});
  dequantize_into(back, qw);
  for (std::size_t r = 0; r < 37; ++r)
    for (std::size_t c = 0; c < 23; ++c) {
      const float err = std::abs(back.at(r, c) - w.at(r, c));
      // Symmetric rounding quantization: at most half a step per channel.
      EXPECT_LE(err, 0.5f * qw.scales[c] + 1e-7f)
          << "cell (" << r << "," << c << ")";
    }
}

TEST(Quantization, ScalesAreMaxAbsOver127) {
  Rng rng(5);
  const Tensor w = random_matrix(8, 4, rng);
  const std::vector<float> scales = per_channel_scales(w);
  ASSERT_EQ(scales.size(), 4u);
  for (std::size_t c = 0; c < 4; ++c) {
    float maxabs = 0.0f;
    for (std::size_t r = 0; r < 8; ++r)
      maxabs = std::max(maxabs, std::abs(w.at(r, c)));
    EXPECT_FLOAT_EQ(scales[c], maxabs / 127.0f);
  }
}

TEST(Quantization, MatmulMatchesExactIntegerReference) {
  Rng rng(29);
  const Tensor a = random_matrix(13, 31, rng);
  const Tensor w = random_matrix(31, 9, rng);
  const QuantizedMatrix qw = quantize_per_channel(w);
  Tensor out(Shape{13, 9});
  quantized_matmul_into(out, a, qw);
  // Reference: re-derive the exact integer arithmetic the kernel promises
  // (dynamic symmetric per-row activation quant, int32 accumulation).
  for (std::size_t r = 0; r < 13; ++r) {
    float maxabs = 0.0f;
    for (std::size_t k = 0; k < 31; ++k)
      maxabs = std::max(maxabs, std::abs(a.at(r, k)));
    ASSERT_GT(maxabs, 0.0f);
    const float inv_scale = 127.0f / maxabs;
    const float a_scale = maxabs / 127.0f;
    std::vector<std::int32_t> qa(31);
    for (std::size_t k = 0; k < 31; ++k)
      qa[k] = static_cast<std::int32_t>(std::clamp(
          std::nearbyintf(a.at(r, k) * inv_scale), -127.0f, 127.0f));
    for (std::size_t c = 0; c < 9; ++c) {
      std::int32_t acc = 0;
      for (std::size_t k = 0; k < 31; ++k)
        acc += qa[k] * static_cast<std::int32_t>(qw.data[c * 31 + k]);
      const float expected =
          static_cast<float>(acc) * (a_scale * qw.scales[c]);
      // Integer accumulation is exact at every dispatch tier, so the
      // result is bitwise, not approximately, equal.
      EXPECT_EQ(out.at(r, c), expected) << "cell (" << r << "," << c << ")";
    }
  }
}

TEST(Quantization, ParallelMatmulBitwiseEqualsSequential) {
  Rng rng(41);
  // Big enough to clear the parallel-dispatch thresholds.
  const Tensor a = random_matrix(512, 96, rng);
  const Tensor w = random_matrix(96, 96, rng);
  const QuantizedMatrix qw = quantize_per_channel(w);
  Tensor serial(Shape{512, 96});
  quantized_matmul_into(serial, a, qw, nullptr);
  Tensor parallel(Shape{512, 96});
  quantized_matmul_into(parallel, a, qw, &ThreadPool::global());
  for (std::size_t i = 0; i < serial.numel(); ++i)
    ASSERT_EQ(serial.data()[i], parallel.data()[i]) << "element " << i;
}

TEST(Quantization, MatmulCloseToFp32) {
  Rng rng(53);
  const Tensor a = random_matrix(24, 48, rng);
  const Tensor w = random_matrix(48, 16, rng);
  const QuantizedMatrix qw = quantize_per_channel(w);
  Tensor exact(Shape{24, 16});
  matmul_into(exact, a, w);
  Tensor quant(Shape{24, 16});
  quantized_matmul_into(quant, a, qw);
  // |error| per output ~ K * (step_a * |w| + step_w * |a|); with unit
  // normal inputs and K=48 these bands are comfortably loose.
  double max_err = 0.0;
  for (std::size_t i = 0; i < exact.numel(); ++i)
    max_err = std::max(max_err, static_cast<double>(std::abs(
                                    exact.data()[i] - quant.data()[i])));
  EXPECT_LE(max_err, 0.35);
  double sum_sq = 0.0, ref_sq = 0.0;
  for (std::size_t i = 0; i < exact.numel(); ++i) {
    const double d = exact.data()[i] - quant.data()[i];
    sum_sq += d * d;
    ref_sq += static_cast<double>(exact.data()[i]) * exact.data()[i];
  }
  EXPECT_LE(std::sqrt(sum_sq / ref_sq), 0.02);  // 2% relative RMS
}

// ---------------------------------------------------------------------------
// ScoringPlan vs the canonical model (the ULP harness, model-level)

class ScoringPlanTest : public ::testing::Test {
 protected:
  static TransformerConfig small_config() {
    TransformerConfig config;
    config.input_dim = 10;
    config.d_model = 24;
    config.num_layers = 2;
    config.num_heads = 2;
    config.ffn_hidden = 32;
    config.num_experts = 3;
    config.top_k = 1;
    config.max_position = 128;
    config.max_segments = 8;
    return config;
  }

  /// Compares plan and model outputs on a 3-block batch; returns the max
  /// |delta| relative to the output magnitude.
  static double max_relative_delta(const TransformerConfig& config,
                                   const QuantCalibration* calibration) {
    Rng rng(71);
    TransformerReconstructor model(config, rng);
    model.set_training(false);
    const std::size_t T = 48;
    Rng data_rng(72);
    const Tensor x = random_matrix(T, config.input_dim, data_rng);
    std::vector<std::size_t> offsets(T), seg_ids(T);
    const std::vector<std::size_t> blocks = {20, 12, 16};
    std::size_t t = 0;
    for (std::size_t b = 0; b < blocks.size(); ++b)
      for (std::size_t r = 0; r < blocks[b]; ++r, ++t) {
        offsets[t] = r;
        seg_ids[t] = b;
      }
    Rng fwd_rng(0);
    const Var canonical = model.forward_blocked(
        Var::constant(x.clone()), offsets, seg_ids, fwd_rng, blocks);
    const ScoringPlan plan(model, calibration);
    Workspace ws;
    const Tensor fast = plan.forward(x, offsets, seg_ids, blocks, ws);
    double max_abs = 1e-12, max_delta = 0.0;
    for (std::size_t i = 0; i < fast.numel(); ++i) {
      max_abs = std::max(max_abs, static_cast<double>(std::abs(
                                      canonical.value().data()[i])));
      max_delta = std::max(
          max_delta, static_cast<double>(std::abs(
                         canonical.value().data()[i] - fast.data()[i])));
    }
    return max_delta / max_abs;
  }
};

TEST_F(ScoringPlanTest, RelaxedPlanMatchesModelToVectorAccuracy) {
  // fp32 plan: same math, different rounding (FMA contraction, vector exp
  // approximations) — agreement to ~1e-4 of the output scale.
  EXPECT_LE(max_relative_delta(small_config(), nullptr), 1e-4);
}

TEST_F(ScoringPlanTest, QuantizedPlanMatchesModelToInt8Accuracy) {
  Rng rng(71);
  const TransformerReconstructor model(small_config(), rng);
  const QuantCalibration calib = calibrate_quantization(model);
  EXPECT_LE(max_relative_delta(small_config(), &calib), 0.08);
}

TEST_F(ScoringPlanTest, DenseFfnVariantMatches) {
  TransformerConfig config = small_config();
  config.use_moe = false;  // the C5 ablation path
  EXPECT_LE(max_relative_delta(config, nullptr), 1e-4);
}

TEST_F(ScoringPlanTest, CalibrationTraversalCountMatchesArchitecture) {
  Rng rng(3);
  const TransformerConfig config = small_config();
  const TransformerReconstructor model(config, rng);
  const QuantCalibration calib = calibrate_quantization(model);
  // input_proj + per layer (packed qkv + out_proj + experts*(fc1+fc2)).
  const std::size_t expected =
      1 + config.num_layers * (2 + config.num_experts * 2);
  EXPECT_EQ(calib.channel_scales.size(), expected);
  // A truncated calibration must be rejected, not silently misapplied.
  QuantCalibration bad = calib;
  bad.channel_scales.pop_back();
  EXPECT_THROW(ScoringPlan(model, &bad), Error);
}

// ---------------------------------------------------------------------------
// Serve-path integration on the D1 sim

class DispatchServeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SimDatasetConfig sim_config = d1_sim_config(0.2, 7);
    sim_config.missing_rate = 0.0;  // clean stream -> exact strict replay
    sim_config.anomaly_ratio = 0.01;
    sim_ = new SimDataset(build_sim_dataset(sim_config));
    NodeSentryConfig config;
    config.model.d_model = 24;
    config.model.num_layers = 2;
    config.model.num_heads = 2;
    config.model.ffn_hidden = 32;
    config.train_epochs = 2;
    config.learning_rate = 3e-3f;
    config.max_tokens_per_segment = 96;
    config.train_window = 32;
    config.match_period = 60;
    config.threshold_window = 40;
    config.k_max = 6;
    config.seed = 99;
    config.incremental_updates = false;
    sentry_ = new NodeSentry(config);
    sentry_->fit(sim_->data, sim_->train_end);
    batch_ = new NodeSentry::DetectReport(sentry_->detect());
  }

  static void TearDownTestSuite() {
    delete batch_;
    delete sentry_;
    delete sim_;
    batch_ = nullptr;
    sentry_ = nullptr;
    sim_ = nullptr;
  }

  static ServeResult replay(ScoringPath path) {
    ServeEngine engine(*sentry_, ServeEngine::Options().scoring(path));
    return serve_replay(engine, sim_->data, sim_->train_end).result;
  }

  static SimDataset* sim_;
  static NodeSentry* sentry_;
  static NodeSentry::DetectReport* batch_;
};

SimDataset* DispatchServeFixture::sim_ = nullptr;
NodeSentry* DispatchServeFixture::sentry_ = nullptr;
NodeSentry::DetectReport* DispatchServeFixture::batch_ = nullptr;

// Regression pin for --strict-replay: the strict path (the ServeConfig
// default) must stay equivalent to batch detect(), exactly as before the
// relaxed path existed.
TEST_F(DispatchServeFixture, StrictReplayStaysBitwise) {
  const ServeResult strict = replay(ScoringPath::kStrict);
  const DetectionDelta delta =
      compare_detections(strict.detections, batch_->detections);
  EXPECT_LE(delta.max_abs_score_delta, 1e-6);
  EXPECT_EQ(delta.prediction_mismatches, 0u);
}

// The ULP-tolerance harness, end to end: relaxed and quantized replays
// reproduce the strict scores to their arithmetic's accuracy.
TEST_F(DispatchServeFixture, RelaxedAndQuantizedScoresTrackStrict) {
  const ServeResult strict = replay(ScoringPath::kStrict);
  const ServeResult relaxed = replay(ScoringPath::kRelaxed);
  const ServeResult quantized = replay(ScoringPath::kQuantized);
  ASSERT_EQ(relaxed.detections.size(), strict.detections.size());
  ASSERT_EQ(quantized.detections.size(), strict.detections.size());
  double scale = 1e-12;
  for (const NodeDetection& det : strict.detections)
    for (const float s : det.scores)
      scale = std::max(scale, static_cast<double>(std::abs(s)));
  double relaxed_max = 0.0, quant_max = 0.0;
  for (std::size_t n = 0; n < strict.detections.size(); ++n) {
    const auto& s = strict.detections[n].scores;
    const auto& r = relaxed.detections[n].scores;
    const auto& q = quantized.detections[n].scores;
    ASSERT_EQ(r.size(), s.size());
    ASSERT_EQ(q.size(), s.size());
    for (std::size_t t = 0; t < s.size(); ++t) {
      relaxed_max = std::max(relaxed_max,
                             static_cast<double>(std::abs(r[t] - s[t])));
      quant_max = std::max(quant_max,
                           static_cast<double>(std::abs(q[t] - s[t])));
    }
  }
  // Bounds are relative to the peak score (scores are whitened squared
  // errors — values near zero make plain relative bounds meaningless).
  EXPECT_LE(relaxed_max, 1e-3 * scale);
  EXPECT_LE(quant_max, 0.15 * scale);
}

// Property: a strict-vs-quantized flag disagreement can only happen for
// threshold-marginal points. Running the full thresholding pipeline
// (reference levels + median filter + k-sigma + score-factor floors) on
// the STRICT scores with every threshold knob nudged ±band must itself
// disagree about any point where the quantized scores flip the flag — a
// flip at a point the band does not consider marginal would mean the
// quantized path moved a score past a threshold it was not close to.
TEST_F(DispatchServeFixture, FlagDisagreementsOnlyInThresholdEpsilonBand) {
  const ServeResult strict = replay(ScoringPath::kStrict);
  const ServeResult quantized = replay(ScoringPath::kQuantized);
  const NodeSentryConfig& nominal = sentry_->config();
  const double band = 0.25;  // generous: |Δscore|/scale stays well below
  NodeSentryConfig low_cfg = nominal;
  low_cfg.k_sigma *= 1.0 - band;
  low_cfg.min_score_factor *= 1.0 - band;
  low_cfg.hard_score_factor *= 1.0 - band;
  NodeSentryConfig high_cfg = nominal;
  high_cfg.k_sigma *= 1.0 + band;
  high_cfg.min_score_factor *= 1.0 + band;
  high_cfg.hard_score_factor *= 1.0 + band;
  const std::size_t begin = sentry_->train_end();
  std::size_t points = 0, disagreements = 0, outside_band = 0;
  for (std::size_t n = 0; n < strict.detections.size(); ++n) {
    const auto& s = strict.detections[n].scores;
    const auto& q = quantized.detections[n].scores;
    ASSERT_EQ(q.size(), s.size());
    // One whole-test-region reference keeps the pipeline self-contained
    // (the engine's per-segment ranges are private); both flag sets below
    // use the same reference, so the comparison is apples to apples.
    const std::vector<std::pair<std::size_t, std::size_t>> range = {
        {begin, s.size()}};
    const std::vector<float> reference = score_reference_levels(s, range);
    const std::vector<std::uint8_t> fs =
        detection_flags(s, reference, begin, nominal);
    const std::vector<std::uint8_t> fq =
        detection_flags(q, reference, begin, nominal);
    const std::vector<std::uint8_t> low =
        detection_flags(s, reference, begin, low_cfg);
    const std::vector<std::uint8_t> high =
        detection_flags(s, reference, begin, high_cfg);
    points += fs.size() - begin;
    for (std::size_t t = begin; t < fs.size(); ++t) {
      if (fs[t] == fq[t]) continue;
      ++disagreements;
      // Marginal: the loosened and tightened thresholds disagree about
      // this point on the strict scores.
      if (low[t] == high[t]) ++outside_band;
    }
  }
  EXPECT_EQ(outside_band, 0u)
      << disagreements << " disagreements, " << outside_band
      << " outside the ±25% threshold band";
  EXPECT_LE(static_cast<double>(disagreements),
            0.005 * static_cast<double>(points))
      << disagreements << " of " << points << " points disagree";
  // And at the engine level: quantized predictions barely move.
  std::size_t engine_mismatches = 0, engine_points = 0;
  for (std::size_t n = 0; n < strict.detections.size(); ++n) {
    const auto& sp = strict.detections[n].predictions;
    const auto& qp = quantized.detections[n].predictions;
    ASSERT_EQ(qp.size(), sp.size());
    engine_points += sp.size();
    for (std::size_t t = 0; t < sp.size(); ++t)
      engine_mismatches += sp[t] != qp[t];
  }
  EXPECT_LE(static_cast<double>(engine_mismatches),
            0.005 * static_cast<double>(engine_points))
      << engine_mismatches << " of " << engine_points
      << " engine predictions disagree";
}

// Satellite bugfix pin: committing T rows must not reallocate the score
// timeline per row — the reserve-to-extent policy keeps reallocations to
// a handful per node instead of O(T).
TEST_F(DispatchServeFixture, ScoreTimelineReallocationsBounded) {
  ServeEngine engine(*sentry_, ServeEngine::Options());
  const ReplayReport rep = serve_replay(engine, sim_->data, sim_->train_end);
  const ServeStats& stats = rep.result.stats;
  const std::size_t ticks = sim_->data.num_timestamps() - sim_->train_end;
  ASSERT_GT(ticks, 64u);
  EXPECT_LE(stats.score_reallocs, sim_->data.num_nodes() * 64);
  EXPECT_GT(stats.score_reallocs, 0u);  // the counter is actually wired
}

// Calibration round-trips through the generation checkpoint unchanged.
TEST_F(DispatchServeFixture, QuantCalibrationSurvivesCheckpoint) {
  const std::size_t clusters = sentry_->library().size();
  obs::Registry obs;
  GenerationRegistry registry(clusters, 2, &obs);
  registry.seed_from_library(sentry_->library());
  const std::string dir =
      (fs::temp_directory_path() / "ns_dispatch_gen_ckpt").string();
  registry.save(dir);
  obs::Registry obs2;
  GenerationRegistry restored(clusters, 2, &obs2);
  restored.load(dir, sentry_->model_config(), sentry_->config().seed);
  for (std::size_t c = 0; c < clusters; ++c) {
    const auto orig = registry.snapshot(c);
    const auto back = restored.snapshot(c);
    ASSERT_EQ(orig->generations.size(), back->generations.size());
    for (std::size_t g = 0; g < orig->generations.size(); ++g) {
      const auto& a = orig->generations[g].quant_calibration;
      const auto& b = back->generations[g].quant_calibration;
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      ASSERT_EQ(a->channel_scales.size(), b->channel_scales.size());
      for (std::size_t m = 0; m < a->channel_scales.size(); ++m)
        EXPECT_EQ(a->channel_scales[m], b->channel_scales[m]);
    }
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ns
