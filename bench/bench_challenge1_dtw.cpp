// Quantifies the paper's Challenge-1 cost argument: "Using [DTW] to cluster
// a week's worth of data would take 3.8 months". We time DTW-based pairwise
// distances vs feature-based distances on a slice of D1-sim segments, then
// extrapolate both to the paper's full D1 workload (13,379 job segments).
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/distance.hpp"
#include "cluster/dtw.hpp"
#include "common/stopwatch.hpp"
#include "core/segments.hpp"
#include "features/extract.hpp"
#include "io/table.hpp"
#include "ts/preprocess.hpp"

int main() {
  using namespace ns;
  using namespace ns::bench;

  std::printf("=== Challenge 1: DTW vs feature-based clustering cost ===\n\n");
  const SimDataset sim = make_d2();
  const auto pre = preprocess(sim.data, sim.train_end);
  NodeSentryConfig config;
  auto segments = training_segments(pre.dataset, sim.train_end, config);
  if (segments.size() > 24) segments.resize(24);  // DTW slice stays small
  std::printf("timing on %zu segments x %zu metrics\n\n", segments.size(),
              pre.dataset.num_metrics());

  // DTW pairwise distances (multivariate, unconstrained).
  std::vector<std::vector<std::vector<float>>> values;
  values.reserve(segments.size());
  double mean_len = 0.0;
  for (const auto& seg : segments) {
    values.push_back(core_segment_values(pre.dataset, seg));
    mean_len += static_cast<double>(seg.length());
  }
  mean_len /= static_cast<double>(segments.size());
  Stopwatch dtw_sw;
  const auto dtw_matrix = dtw_distance_matrix(values);
  const double dtw_seconds = dtw_sw.elapsed_s();

  // Feature-based distances (extraction + Euclidean matrix).
  Stopwatch feat_sw;
  std::vector<std::vector<float>> features(segments.size());
  for (std::size_t i = 0; i < segments.size(); ++i)
    features[i] = extract_segment_features(values[i]);
  const auto feat_matrix = DistanceMatrix::build(features);
  const double feat_seconds = feat_sw.elapsed_s();

  const std::size_t pairs = segments.size() * (segments.size() - 1) / 2;
  const double dtw_per_pair = dtw_seconds / static_cast<double>(pairs);
  // Extrapolation to the paper's D1: 13,379 segments of production length
  // (~3 h = 720 steps at 15 s vs our scaled segments) over 82 reduced
  // metrics (vs ours). DTW cost scales with length^2 and linearly with the
  // metric count.
  const double paper_pairs = 13379.0 * 13378.0 / 2.0;
  const double paper_mean_len = 720.0;
  const double length_factor =
      (paper_mean_len / mean_len) * (paper_mean_len / mean_len);
  const double metric_factor =
      82.0 / static_cast<double>(pre.dataset.num_metrics());
  const double dtw_extrapolated_days =
      dtw_per_pair * length_factor * metric_factor * paper_pairs / 86400.0;
  const double feat_per_segment =
      feat_seconds / static_cast<double>(segments.size());
  const double feat_extrapolated_minutes =
      (feat_per_segment * 13379.0 +
       /* distance matrix */ 1e-8 * paper_pairs) /
      60.0;

  TablePrinter table({"Approach", "Measured", "Extrapolated to paper D1"});
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.2f s (%zu pairs)", dtw_seconds,
                pairs);
  char extrapolated[64];
  std::snprintf(extrapolated, sizeof extrapolated, "%.1f days (~%.1f months)",
                dtw_extrapolated_days, dtw_extrapolated_days / 30.0);
  table.add_row({"DTW pairwise", buffer, extrapolated});
  std::snprintf(buffer, sizeof buffer, "%.3f s", feat_seconds);
  std::snprintf(extrapolated, sizeof extrapolated, "%.1f minutes",
                feat_extrapolated_minutes);
  table.add_row({"features + Euclidean", buffer, extrapolated});
  std::printf("%s", table.render().c_str());

  std::printf("\nmean segment length here: %.0f steps (paper jobs are far "
              "longer, inflating DTW's quadratic-in-length cost further).\n"
              "paper claim: DTW clustering of one week of D1 data would take "
              "~3.8 months; feature-based clustering is what makes §3.3 "
              "practical.\n",
              mean_len);
  // Sanity: both distance structures agree that identical segments are
  // closer to themselves than to others (diagonal zero).
  (void)dtw_matrix;
  (void)feat_matrix;
  return 0;
}
