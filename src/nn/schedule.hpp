// Learning-rate schedules and gradient utilities for the optimizers.
#pragma once

#include <cmath>
#include <cstddef>
#include <numbers>
#include <vector>

#include "common/error.hpp"
#include "tensor/autograd.hpp"

namespace ns {

/// Learning-rate schedule interface: maps a 0-based step index to a rate.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual float rate(std::size_t step) const = 0;
};

/// Constant rate.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float rate(std::size_t) const override { return lr_; }

 private:
  float lr_;
};

/// Linear warmup to `peak` over `warmup_steps`, then cosine decay to
/// `floor` at `total_steps` (clamped afterwards).
class WarmupCosineLr : public LrSchedule {
 public:
  WarmupCosineLr(float peak, std::size_t warmup_steps,
                 std::size_t total_steps, float floor = 0.0f)
      : peak_(peak),
        warmup_(warmup_steps),
        total_(total_steps),
        floor_(floor) {
    NS_REQUIRE(total_steps > warmup_steps,
               "cosine schedule needs total > warmup");
  }

  float rate(std::size_t step) const override {
    if (warmup_ > 0 && step < warmup_)
      return peak_ * static_cast<float>(step + 1) /
             static_cast<float>(warmup_);
    const std::size_t s = std::min(step, total_ - 1);
    const double progress = static_cast<double>(s - warmup_) /
                            static_cast<double>(total_ - warmup_);
    const double cosine = 0.5 * (1.0 + std::cos(std::numbers::pi * progress));
    return floor_ + (peak_ - floor_) * static_cast<float>(cosine);
  }

 private:
  float peak_;
  std::size_t warmup_, total_;
  float floor_;
};

/// Step decay: rate = base * gamma^(step / period).
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(float base, float gamma, std::size_t period)
      : base_(base), gamma_(gamma), period_(period) {
    NS_REQUIRE(period > 0, "step decay needs a positive period");
  }

  float rate(std::size_t step) const override {
    return base_ * std::pow(gamma_, static_cast<float>(step / period_));
  }

 private:
  float base_, gamma_;
  std::size_t period_;
};

/// Global-norm gradient clipping: scales every parameter's gradient so the
/// joint L2 norm does not exceed `max_norm`. Returns the pre-clip norm.
double clip_gradient_norm(std::vector<Var>& params, double max_norm);

}  // namespace ns
