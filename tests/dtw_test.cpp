#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cluster/dtw.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace ns {
namespace {

TEST(Dtw, IdenticalSeriesDistanceZero) {
  const std::vector<float> a{1, 2, 3, 2, 1};
  EXPECT_DOUBLE_EQ(dtw_distance(a, a), 0.0);
}

TEST(Dtw, EqualsEuclideanForAlignedSeries) {
  // Monotone series of equal length with small pointwise offset: the
  // diagonal path is optimal, so DTW == pointwise L2.
  const std::vector<float> a{0, 1, 2, 3, 4};
  std::vector<float> b = a;
  for (float& x : b) x += 0.1f;
  EXPECT_NEAR(dtw_distance(a, b), std::sqrt(5 * 0.1 * 0.1), 1e-6);
}

TEST(Dtw, InvariantToTimeStretching) {
  // The same ramp traversed at half speed: DTW should be ~0, while the
  // pointwise distance of the truncated/resampled pair would be large.
  const std::vector<float> fast{0, 1, 2, 3, 4};
  const std::vector<float> slow{0, 0, 1, 1, 2, 2, 3, 3, 4, 4};
  EXPECT_NEAR(dtw_distance(fast, slow), 0.0, 1e-9);
}

TEST(Dtw, SymmetricAndNonNegative) {
  Rng rng(1);
  std::vector<float> a(20), b(31);
  for (float& x : a) x = static_cast<float>(rng.gaussian());
  for (float& x : b) x = static_cast<float>(rng.gaussian());
  const double ab = dtw_distance(a, b);
  const double ba = dtw_distance(b, a);
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_GE(ab, 0.0);
}

TEST(Dtw, BandConstraintNeverBeatsUnconstrained) {
  Rng rng(2);
  std::vector<float> a(40), b(40);
  for (float& x : a) x = static_cast<float>(rng.gaussian());
  for (float& x : b) x = static_cast<float>(rng.gaussian());
  const double unconstrained = dtw_distance(a, b, 0);
  const double banded = dtw_distance(a, b, 3);
  EXPECT_GE(banded + 1e-12, unconstrained);
}

TEST(Dtw, RejectsEmptySeries) {
  const std::vector<float> a{1, 2};
  EXPECT_THROW(dtw_distance(a, {}), InvalidArgument);
}

TEST(DtwMultivariate, MatchesUnivariateForSingleMetric) {
  const std::vector<float> a{0, 1, 0, -1};
  const std::vector<float> b{0, 0.5f, 1, 0.5f, 0, -1};
  const double uni = dtw_distance(a, b);
  const double multi = dtw_distance_multivariate({a}, {b});
  EXPECT_NEAR(uni, multi, 1e-9);
}

TEST(DtwMultivariate, MetricCountMismatchRejected) {
  const std::vector<std::vector<float>> a{{1, 2}, {3, 4}};
  const std::vector<std::vector<float>> b{{1, 2}};
  EXPECT_THROW(dtw_distance_multivariate(a, b), InvalidArgument);
}

TEST(DtwMatrix, SymmetricZeroDiagonal) {
  Rng rng(3);
  std::vector<std::vector<std::vector<float>>> segments;
  for (int s = 0; s < 5; ++s) {
    std::vector<std::vector<float>> seg(2);
    const std::size_t len = 10 + 3 * static_cast<std::size_t>(s);
    for (auto& series : seg) {
      series.resize(len);
      for (float& x : series) x = static_cast<float>(rng.gaussian());
    }
    segments.push_back(std::move(seg));
  }
  const auto matrix = dtw_distance_matrix(segments);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    EXPECT_EQ(matrix[i][i], 0.0);
    for (std::size_t j = 0; j < segments.size(); ++j)
      EXPECT_EQ(matrix[i][j], matrix[j][i]);
  }
}

TEST(DtwMatrix, SimilarShapesCloserThanDifferent) {
  // Two sinusoids of different length vs a ramp: the sinusoids must be
  // mutually closer despite the length difference.
  std::vector<std::vector<std::vector<float>>> segments(3);
  std::vector<float> sine_a(40), sine_b(60), ramp(50);
  for (std::size_t i = 0; i < sine_a.size(); ++i)
    sine_a[i] = std::sin(2.0 * M_PI * i / 20.0);
  for (std::size_t i = 0; i < sine_b.size(); ++i)
    sine_b[i] = std::sin(2.0 * M_PI * i / 30.0);
  for (std::size_t i = 0; i < ramp.size(); ++i)
    ramp[i] = static_cast<float>(i) / 10.0f;
  segments[0] = {sine_a};
  segments[1] = {sine_b};
  segments[2] = {ramp};
  const auto matrix = dtw_distance_matrix(segments);
  EXPECT_LT(matrix[0][1], matrix[0][2]);
  EXPECT_LT(matrix[0][1], matrix[1][2]);
}

}  // namespace
}  // namespace ns
