#include "common/thread_pool.hpp"

#include <algorithm>

namespace ns {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    threads = hc == 0 ? 1 : hc;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(ShutdownMode::kDrain); }

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    NS_CHECK(!stopping_, "submit on stopped ThreadPool");
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::post(std::function<void()> task) {
  // The wrapper catches here so the exception survives the discarded future.
  submit([this, task = std::move(task)] {
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_post_error_) first_post_error_ = std::current_exception();
    }
  });
}

void ThreadPool::rethrow_pending() {
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::swap(error, first_post_error_);
  }
  if (error) std::rethrow_exception(error);
}

std::size_t ThreadPool::shutdown(ShutdownMode mode) {
  // Discarded tasks are destroyed outside the lock: destroying a
  // packaged_task fulfills its future with broken_promise, and observers of
  // that future may themselves touch the pool.
  std::deque<std::packaged_task<void()>> discarded;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return 0;  // already shut down
    stopping_ = true;
    if (mode == ShutdownMode::kDiscard) discarded.swap(queue_);
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  return discarded.size();
}

bool ThreadPool::stopped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stopping_;
}

std::size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions captured in the packaged_task's future
  }
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn, ThreadPool* pool,
                  std::size_t grain) {
  if (begin >= end) return;
  if (pool == nullptr) pool = &ThreadPool::global();
  const std::size_t n = end - begin;
  const std::size_t workers = pool->size();
  if (workers <= 1 || n <= grain || pool->stopped()) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(pool->submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ns
