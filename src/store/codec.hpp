// Sample codec for the embedded time-series store (DESIGN.md §13).
//
// One page holds one node's consecutive samples, bit-packed in the Gorilla
// style: ticks are delta-of-delta coded (a regular 15 s cadence costs one
// bit per row), each raw metric value is XOR'd against the previous row's
// value of the same metric (identical values cost one bit; small drifts
// cost their meaningful mantissa bits), and every row carries its anomaly
// bit and validity bit *in-band* — the netdata discipline: anomaly rates
// fall out of ordinary aggregation over the samples with zero extra
// storage, and the bits are immutable history ("what was detectable
// THEN"). Encoding is bit-preserving: decode(encode(x)) reproduces every
// float bit pattern exactly, NaN payloads included, so a dataset rebuilt
// from the store replays bitwise identically to the CSV original.
//
// Pages are independently decodable (the first row of a page is stored in
// full; all per-metric XOR state resets), so a time-range query can seek
// to any page without touching its predecessors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ns {

/// One stored sample: every raw metric of one node at one tick, plus the
/// in-band bits. `values` is the raw metric space (NaN = missing cell);
/// `valid` is the §quality summary bit (0 = the quality/stream mask voided
/// part of this row); `anomaly` is the §3.5 detection flag at write time.
struct StoreSample {
  std::size_t t = 0;
  std::int64_t job_id = 0;
  bool anomaly = false;
  bool valid = true;
  std::vector<float> values;
};

// ------------------------------------------------------------- bit streams

/// LSB-first bit packer. Bits land in the low bit of the current byte
/// first; multi-bit writes emit the low bit of `value` first.
class BitWriter {
 public:
  void write_bit(std::uint32_t bit);
  void write_bits(std::uint64_t value, std::size_t count);  // count <= 64
  /// Unsigned LEB128-style varint inside the bit stream (7 data bits per
  /// continuation group).
  void write_varint(std::uint64_t value);

  std::size_t bit_count() const { return bits_; }
  std::size_t byte_count() const { return (bits_ + 7) / 8; }
  /// Truncates back to a previously captured bit_count().
  void truncate(std::size_t bit_position);
  std::vector<std::uint8_t> take();  // resets the writer
  const std::vector<std::uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t bits_ = 0;
};

/// Mirror of BitWriter. Reads past the end throw ns::ParseError.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : buf_(bytes) {}

  std::uint32_t read_bit();
  std::uint64_t read_bits(std::size_t count);
  std::uint64_t read_varint();
  std::size_t bits_consumed() const { return pos_; }

 private:
  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

/// Zigzag mapping so small negative deltas stay small varints.
inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

// ------------------------------------------------------------ page codec

/// Builds one page's bit-packed payload. append() returns false (leaving
/// the page untouched) once adding the sample would push the payload past
/// the byte capacity — seal the page and start a new one. A page always
/// accepts at least one sample, whatever the capacity.
class PageBuilder {
 public:
  PageBuilder(std::size_t num_metrics, std::size_t capacity_bytes);

  bool append(const StoreSample& sample);

  bool empty() const { return samples_ == 0; }
  std::size_t samples() const { return samples_; }
  std::size_t num_metrics() const { return num_metrics_; }
  std::size_t first_tick() const { return first_t_; }
  std::size_t last_tick() const { return prev_t_; }
  std::size_t payload_bytes() const { return writer_.byte_count(); }

  /// Returns the payload and resets the builder for the next page.
  std::vector<std::uint8_t> finish();

 private:
  struct MetricState {
    std::uint32_t prev_bits = 0;
    std::uint8_t leading = 0;
    std::uint8_t meaningful = 0;  ///< 0 = no reusable window yet
  };

  void encode_row(const StoreSample& sample);

  std::size_t num_metrics_;
  std::size_t capacity_bytes_;
  BitWriter writer_;
  std::size_t samples_ = 0;
  std::size_t first_t_ = 0;
  std::size_t prev_t_ = 0;
  std::int64_t prev_delta_ = 0;
  std::int64_t prev_job_ = 0;
  std::vector<MetricState> metrics_;
};

/// Decodes a page payload produced by PageBuilder. The metric count and
/// sample count come from the page frame header (store.hpp).
class PageReader {
 public:
  PageReader(std::span<const std::uint8_t> payload, std::size_t num_metrics,
             std::size_t sample_count);

  /// Fills the next sample; false once `sample_count` rows were read.
  /// Throws ns::ParseError on a malformed payload.
  bool next(StoreSample& out);

 private:
  BitReader reader_;
  std::size_t num_metrics_;
  std::size_t remaining_;
  bool first_ = true;
  std::size_t prev_t_ = 0;
  std::int64_t prev_delta_ = 0;
  std::int64_t prev_job_ = 0;
  std::vector<std::uint32_t> prev_bits_;
  std::vector<std::uint8_t> leading_;
  std::vector<std::uint8_t> meaningful_;
};

}  // namespace ns
