#include "sim/metrics.hpp"

#include <set>

namespace ns {
namespace {

struct SignalInfo {
  Signal signal;
  const char* raw_name;       // node-exporter style name
  MetricCategory category;
  enum class FanOut { kCore, kNic, kDisk, kNode } fan_out;
};

// Names loosely follow the examples in the paper's Table 3.
const SignalInfo kSignalInfo[kNumSignals] = {
    {Signal::kCpuUser, "cpu_seconds_user_total", MetricCategory::kCpu,
     SignalInfo::FanOut::kCore},
    {Signal::kCpuSystem, "cpu_seconds_system_total", MetricCategory::kCpu,
     SignalInfo::FanOut::kCore},
    {Signal::kLoad, "load1", MetricCategory::kCpu, SignalInfo::FanOut::kNode},
    {Signal::kContextSwitches, "context_switches_total", MetricCategory::kCpu,
     SignalInfo::FanOut::kCore},
    {Signal::kMemUsed, "memory_active_bytes", MetricCategory::kMemory,
     SignalInfo::FanOut::kNode},
    {Signal::kMemCache, "memory_cached_bytes", MetricCategory::kMemory,
     SignalInfo::FanOut::kNode},
    {Signal::kPageFaults, "vmstat_pgmajfault", MetricCategory::kMemory,
     SignalInfo::FanOut::kNode},
    {Signal::kDiskIo, "disk_io_time_seconds_total", MetricCategory::kFilesystem,
     SignalInfo::FanOut::kDisk},
    {Signal::kDiskUsed, "filesystem_used_bytes", MetricCategory::kFilesystem,
     SignalInfo::FanOut::kDisk},
    {Signal::kNetRx, "network_receive_bytes_total", MetricCategory::kNetwork,
     SignalInfo::FanOut::kNic},
    {Signal::kNetTx, "network_transmit_bytes_total", MetricCategory::kNetwork,
     SignalInfo::FanOut::kNic},
    {Signal::kProcsRunning, "procs_running", MetricCategory::kProcess,
     SignalInfo::FanOut::kNode},
};

}  // namespace

std::vector<RawMetricSpec> build_metric_catalog(
    const MetricCatalogConfig& config) {
  std::vector<RawMetricSpec> catalog;
  // Deterministic pseudo-random gains/offsets derived from position keep the
  // catalog stable without threading an Rng through.
  std::uint64_t h = 0x243F6A8885A308D3ull;
  const auto next01 = [&h]() {
    h = h * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  };

  for (const SignalInfo& info : kSignalInfo) {
    std::size_t units = 1;
    switch (info.fan_out) {
      case SignalInfo::FanOut::kCore: units = config.cores; break;
      case SignalInfo::FanOut::kNic: units = config.nics; break;
      case SignalInfo::FanOut::kDisk: units = config.disks; break;
      case SignalInfo::FanOut::kNode: units = 1; break;
    }
    // Per-unit copies: same semantic group -> reduced by aggregation.
    for (std::size_t u = 0; u < units; ++u) {
      RawMetricSpec spec;
      spec.kind = RawMetricKind::kUnitCopy;
      spec.source = info.signal;
      spec.meta.name = units == 1 ? std::string(info.raw_name)
                                  : std::string(info.raw_name) + "{unit=\"" +
                                        std::to_string(u) + "\"}";
      spec.meta.semantic_group = info.raw_name;
      spec.meta.category = info.category;
      spec.meta.unit_id = units == 1 ? -1 : static_cast<int>(u);
      spec.gain = 0.9 + 0.2 * next01();  // units see slightly different load
      spec.unit_noise = 0.008 + 0.012 * next01();
      catalog.push_back(std::move(spec));
    }
    // Derived near-duplicates: distinct semantic groups but r ~ 1 with the
    // source -> removed by Pearson pruning.
    for (std::size_t d = 0; d < config.derived_per_signal; ++d) {
      RawMetricSpec spec;
      spec.kind = RawMetricKind::kDerived;
      spec.source = info.signal;
      spec.meta.name =
          std::string(info.raw_name) + "_derived" + std::to_string(d);
      spec.meta.semantic_group = spec.meta.name;
      spec.meta.category = info.category;
      spec.gain = 0.5 + 2.0 * next01();
      spec.offset = next01();
      spec.unit_noise = 1e-4;  // nearly exact duplicates
      catalog.push_back(std::move(spec));
    }
  }
  // Constant bookkeeping metrics.
  static const char* kConstantNames[] = {"system_uptime_flag", "timex_status",
                                         "ksmd_run", "filefd_maximum",
                                         "boot_epoch_parity", "hwmon_enabled"};
  for (std::size_t c = 0; c < config.constant_metrics; ++c) {
    RawMetricSpec spec;
    spec.kind = RawMetricKind::kConstant;
    spec.meta.name = c < std::size(kConstantNames)
                         ? kConstantNames[c]
                         : "constant_metric_" + std::to_string(c);
    spec.meta.semantic_group = spec.meta.name;
    spec.meta.category = MetricCategory::kSystem;
    spec.constant_value = next01();
    spec.unit_noise = 0.0;
    catalog.push_back(std::move(spec));
  }
  return catalog;
}

std::size_t catalog_semantic_groups(
    const std::vector<RawMetricSpec>& catalog) {
  std::set<std::string> groups;
  for (const auto& spec : catalog) groups.insert(spec.meta.semantic_group);
  return groups.size();
}

}  // namespace ns
