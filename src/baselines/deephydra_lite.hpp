// DeepHydraLite — the unsupervised core of DeepHYDRA (Stehle et al.,
// ICS'24): an autoencoder's latent space clustered with DBSCAN; windows
// whose latent falls far from any training cluster score as anomalous.
//
// The full DeepHYDRA is semi-supervised and therefore excluded from the
// paper's Table 4 comparison (§4.1.2); this unsupervised distillation is
// provided as an extra detector for experimentation.
#pragma once

#include <vector>

#include "baselines/detector.hpp"

namespace ns {

struct DeepHydraLiteConfig {
  std::size_t window = 32;
  std::size_t stride = 16;
  std::size_t hidden = 32;
  std::size_t latent = 6;
  std::size_t epochs = 3;
  float learning_rate = 2e-3f;
  std::size_t max_train_rows = 6144;
  /// DBSCAN neighbourhood, as a multiple of the median pairwise latent
  /// distance (adaptive: latent scale depends on training).
  double eps_factor = 0.5;
  std::size_t min_points = 4;
  std::uint64_t seed = 47;
};

class DeepHydraLite : public Detector {
 public:
  explicit DeepHydraLite(DeepHydraLiteConfig config = {}) : config_(config) {}
  std::string name() const override { return "DeepHYDRA-lite"; }
  DetectorReport run(const MtsDataset& processed,
                     std::size_t train_end) override;

 private:
  DeepHydraLiteConfig config_;
};

}  // namespace ns
