#include "serve/retrainer.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "nn/module.hpp"

namespace ns {

Retrainer::Retrainer(GenerationRegistry& registry,
                     const ClusterLibrary& library,
                     const TransformerConfig& model_config,
                     RetrainerConfig config, obs::Registry* obs_registry,
                     RetrainFaultInjector* faults)
    : registry_(&registry),
      library_(&library),
      model_config_(model_config),
      config_(std::move(config)),
      faults_(faults) {
  NS_REQUIRE(library.size() == registry.num_clusters(),
             "retrainer: library has " << library.size()
                                       << " clusters, registry "
                                       << registry.num_clusters());
  NS_REQUIRE(config_.min_segments >= 1 &&
                 config_.max_segments >= config_.min_segments,
             "retrainer: bad segment bounds");
  NS_REQUIRE(config_.ring_capacity >= config_.max_segments,
             "retrainer: ring smaller than max_segments");
  clusters_.resize(library.size());
  obs_ = obs_registry ? obs_registry : &obs::Registry::global();
  published_counter_ = &obs_->counter("ns_retrain_published_total",
                                      "Generations published by the retrainer");
  failed_counter_ = &obs_->counter(
      "ns_retrain_failed_total", "Retrains that exhausted every attempt");
  rejected_counter_ = &obs_->counter(
      "ns_retrain_rejected_total",
      "Retrained clones rejected by validation (never served)");
  retries_counter_ = &obs_->counter("ns_retrain_retries_total",
                                    "Retrain attempts retried after a crash");
  breaker_gauges_.reserve(clusters_.size());
  age_gauges_.reserve(clusters_.size());
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    const obs::LabelSet labels{{"cluster", std::to_string(c)}};
    breaker_gauges_.push_back(&obs_->gauge(
        "ns_retrain_breaker_state",
        "Circuit breaker: 0 closed, 1 open, 2 half-open", labels));
    age_gauges_.push_back(&obs_->gauge(
        "ns_generation_age_cycles",
        "Retrainer cycles since this cluster last published", labels));
  }
}

Retrainer::~Retrainer() { stop(); }

void Retrainer::offer_segment(std::size_t cluster, Tensor tokens,
                              std::size_t segment_id) {
  NS_REQUIRE(cluster < clusters_.size(),
             "retrainer: cluster " << cluster << " out of range");
  segments_offered_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(ring_mutex_);
  std::deque<FreshSegment>& ring = clusters_[cluster].ring;
  ring.push_back({std::move(tokens), segment_id});
  while (ring.size() > config_.ring_capacity) ring.pop_front();
}

RetrainCycleReport Retrainer::run_cycle() {
  RetrainCycleReport report;
  report.cycle = cycle_.fetch_add(1, std::memory_order_relaxed) + 1;
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    std::vector<FreshSegment> segments;
    bool skip_open = false;
    {
      std::lock_guard<std::mutex> lock(ring_mutex_);
      ClusterState& cs = clusters_[c];
      if (cs.state == BreakerState::kOpen) {
        if (cs.open_cycles_left > 1) {
          --cs.open_cycles_left;
          skip_open = true;
        } else {
          // Cooldown over: half-open, one probe retrain is allowed.
          cs.open_cycles_left = 0;
          cs.state = BreakerState::kHalfOpen;
        }
      }
      if (!skip_open && cs.ring.size() >= config_.min_segments) {
        // Consume the freshest K; anything older is stale by definition
        // once a retrain on newer data happens, so the ring is drained.
        const std::size_t take =
            std::min(config_.max_segments, cs.ring.size());
        segments.reserve(take);
        for (auto it = cs.ring.end() - static_cast<std::ptrdiff_t>(take);
             it != cs.ring.end(); ++it)
          segments.push_back(std::move(*it));
        cs.ring.clear();
      }
      if (skip_open && cs.ring.size() >= config_.min_segments)
        ++report.skipped_breaker_open;
      breaker_gauges_[c]->set(static_cast<double>(cs.state));
      age_gauges_[c]->set(
          static_cast<double>(report.cycle - cs.last_publish_cycle));
    }
    if (segments.empty()) continue;
    ++report.clusters_with_data;
    report.segments_consumed += segments.size();
    const bool published = retrain_cluster(c, std::move(segments), report);
    {
      std::lock_guard<std::mutex> lock(ring_mutex_);
      ClusterState& cs = clusters_[c];
      if (published) {
        cs.consecutive_failures = 0;
        cs.state = BreakerState::kClosed;
        cs.last_publish_cycle = report.cycle;
        age_gauges_[c]->set(0.0);
      } else {
        ++cs.consecutive_failures;
        if (cs.state == BreakerState::kHalfOpen ||
            cs.consecutive_failures >= config_.breaker_threshold) {
          cs.state = BreakerState::kOpen;
          cs.open_cycles_left = std::max<std::size_t>(
              config_.breaker_cooldown, 1);
        }
      }
      breaker_gauges_[c]->set(static_cast<double>(cs.state));
    }
  }
  return report;
}

bool Retrainer::retrain_cluster(std::size_t cluster,
                                std::vector<FreshSegment> segments,
                                RetrainCycleReport& report) {
  const std::uint64_t cycle = cycle_.load(std::memory_order_relaxed);
  // Base generation: the newest scoring-eligible one; the seeded library
  // model when the set is somehow empty.
  auto snap = registry_->snapshot(cluster);
  std::shared_ptr<const TransformerReconstructor> base_model;
  double base_baseline = 1.0;
  for (auto it = snap->generations.rbegin(); it != snap->generations.rend();
       ++it)
    if (!it->quarantined) {
      base_model = it->model;
      base_baseline = it->baseline_error;
      break;
    }
  const ClusterEntry& entry = library_->clusters()[cluster];
  if (!base_model) {
    base_model = entry.model;
    base_baseline = entry.baseline_error;
  }

  // Chaos seam: poisoned-training-segment faults corrupt the gathered
  // tokens before chunking, exactly where a sick collector would.
  if (faults_ != nullptr) {
    Rng poison_rng(config_.seed ^ (cycle * 2654435761ull) ^ cluster);
    for (FreshSegment& seg : segments)
      faults_->poison(cluster, seg.tokens, poison_rng);
  }

  // Chunking mirrors the fit path: train_window-row windows, positional
  // offsets within the segment, the member segment id for segment-aware
  // positional encoding.
  const std::size_t W = std::max<std::size_t>(config_.train_window, 4);
  std::vector<TrainChunk> chunks;
  for (const FreshSegment& seg : segments) {
    const std::size_t rows = seg.tokens.size(0);
    for (std::size_t start = 0; start < rows; start += W) {
      const std::size_t stop = std::min(rows, start + W);
      if (stop - start < 2) break;
      TrainChunk chunk;
      chunk.tokens = slice_rows(seg.tokens, start, stop);
      chunk.offsets.resize(stop - start);
      for (std::size_t r = 0; r < chunk.offsets.size(); ++r)
        chunk.offsets[r] = start + r;
      chunk.segment_id = seg.segment_id;
      chunks.push_back(std::move(chunk));
    }
  }
  if (chunks.empty()) return false;

  TrainOptions options;
  options.epochs = config_.epochs;
  options.learning_rate = config_.learning_rate;
  options.batch = config_.batch;
  options.denoise_noise = config_.denoise_noise;
  options.denoise_token_drop = config_.denoise_token_drop;
  const std::uint64_t train_seed =
      config_.seed + cycle * 7919ull + cluster * 104729ull;

  const std::size_t attempts = std::max<std::size_t>(config_.max_attempts, 1);
  for (std::size_t attempt = 1; attempt <= attempts; ++attempt) {
    try {
      if (faults_ != nullptr) faults_->at_stage(cluster, /*publishing=*/false);
      // Clone the base model through the parameter stream. Scoring
      // forwards only ever *read* parameter tensors (eval mode, no
      // gradients), so streaming them out while the base keeps serving is
      // safe; the clone is private to this attempt.
      Rng clone_rng(train_seed);
      auto clone = std::make_shared<TransformerReconstructor>(model_config_,
                                                              clone_rng);
      {
        std::stringstream buffer(std::ios::in | std::ios::out |
                                 std::ios::binary);
        save_parameters(*base_model, buffer);
        load_parameters(*clone, buffer);
      }
      const TrainStats stats = train_reconstructor(
          *clone, chunks, entry.metric_weights, options, train_seed);
      if (!validate_clone(*clone, stats, base_baseline)) {
        // Bad data trains a bad clone deterministically — retrying the
        // same segments cannot help, so reject without retries. The
        // serving set is untouched.
        ++report.retrains_rejected;
        rejected_counter_->inc();
        ++report.retrains_failed;
        failed_counter_->inc();
        return false;
      }
      // Crash-mid-publish fires *before* the atomic swap: readers never
      // see a partial set, and the on-disk checkpoint stays the previous
      // complete one.
      if (faults_ != nullptr) faults_->at_stage(cluster, /*publishing=*/true);
      ModelGeneration gen;
      gen.model = std::move(clone);
      gen.residual_scale = stats.residual_scale;
      gen.baseline_error = stats.baseline_error;
      gen.trained_cycle = cycle;
      // Fresh weights need fresh int8 scales; computing them at publish
      // time (not lazily at first score) keeps the quantized serve path
      // allocation-free and puts the scales in the checkpoint.
      gen.quant_calibration = std::make_shared<const QuantCalibration>(
          calibrate_quantization(*gen.model));
      registry_->publish(cluster, std::move(gen));
      if (!config_.checkpoint_dir.empty())
        registry_->save(config_.checkpoint_dir);
      ++report.retrains_published;
      published_counter_->inc();
      return true;
    } catch (const std::exception&) {
      if (attempt == attempts) {
        ++report.retrains_failed;
        failed_counter_->inc();
        return false;
      }
      ++report.retries;
      retries_counter_->inc();
      // Bounded exponential backoff before the next attempt.
      std::this_thread::sleep_for(config_.backoff_initial *
                                  (std::int64_t{1} << (attempt - 1)));
    }
  }
  return false;
}

bool Retrainer::validate_clone(const TransformerReconstructor& clone,
                               const TrainStats& stats,
                               double base_baseline) const {
  if (!std::isfinite(stats.baseline_error) || stats.baseline_error <= 0.0)
    return false;
  if (config_.max_baseline_inflation > 0.0 &&
      stats.baseline_error >
          config_.max_baseline_inflation * std::max(base_baseline, 1e-9))
    return false;
  for (const float s : stats.residual_scale.flat())
    if (!std::isfinite(s)) return false;
  for (const Var& p : clone.parameters())
    for (const float v : p.value().flat())
      if (!std::isfinite(v)) return false;
  return true;
}

void Retrainer::start(std::chrono::milliseconds interval) {
  NS_REQUIRE(!worker_.joinable(), "retrainer: already started");
  {
    std::lock_guard<std::mutex> lock(worker_mutex_);
    worker_stop_ = false;
  }
  worker_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lock(worker_mutex_);
    while (!worker_stop_) {
      if (worker_cv_.wait_for(lock, interval, [this] { return worker_stop_; }))
        break;
      lock.unlock();
      try {
        run_cycle();
      } catch (...) {
        // A cycle-level error (e.g. checkpoint disk failure) must not kill
        // the maintenance thread; the failure counters carry the signal.
      }
      lock.lock();
    }
  });
}

void Retrainer::stop() {
  {
    std::lock_guard<std::mutex> lock(worker_mutex_);
    worker_stop_ = true;
  }
  worker_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

BreakerState Retrainer::breaker(std::size_t cluster) const {
  NS_REQUIRE(cluster < clusters_.size(),
             "retrainer: cluster " << cluster << " out of range");
  std::lock_guard<std::mutex> lock(ring_mutex_);
  return clusters_[cluster].state;
}

std::uint64_t Retrainer::cycles() const {
  return cycle_.load(std::memory_order_relaxed);
}

std::size_t Retrainer::buffered_segments(std::size_t cluster) const {
  NS_REQUIRE(cluster < clusters_.size(),
             "retrainer: cluster " << cluster << " out of range");
  std::lock_guard<std::mutex> lock(ring_mutex_);
  return clusters_[cluster].ring.size();
}

}  // namespace ns
