// Batched mini-batch trainer for the shared reconstruction models
// (DESIGN.md §11). Extracted from NodeSentry::train_cluster so the trainer
// can be driven (and its equivalence contracts tested) without standing up
// the full pipeline.
//
// Contracts:
//  - batch == 1 reproduces the classic one-step-per-chunk denoising trainer
//    bit for bit: same RNG stream, same forward graph, same loss, same Adam
//    updates, same residual statistics.
//  - batch > 1 packs B chunks into one block-diagonal forward (attention
//    never crosses a chunk boundary) and takes one Adam step on the
//    batch-mean gradient; the optimizer trajectory intentionally differs.
//  - The post-training residual statistics are batch-size-invariant and
//    thread-count-invariant (fixed sharding, sequential fold in chunk
//    order).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "nn/transformer.hpp"

namespace ns {

/// One training chunk: `tokens` is [len, M], `offsets` the per-token
/// positions inside the source segment (for positional encoding) and
/// `segment_id` the member index (for segment-aware encoding).
struct TrainChunk {
  Tensor tokens;
  std::vector<std::size_t> offsets;
  std::size_t segment_id = 0;
};

struct TrainOptions {
  std::size_t epochs = 1;
  float learning_rate = 1e-3f;
  /// Chunks per Adam step (clamped to >= 1). 1 == classic trainer.
  std::size_t batch = 1;
  /// Denoising corruption of the inputs; the loss targets the clean tokens.
  float denoise_noise = 0.0f;
  float denoise_token_drop = 0.0f;
  /// Pool for the residual-statistics grid (global pool when null). The
  /// statistics are bitwise identical for any pool/thread count.
  ThreadPool* pool = nullptr;
};

/// Scoring statistics of the trained model on its clean training chunks.
struct TrainStats {
  /// [M] per-metric mean squared residual (whitening divisor), floored at
  /// 1e-6; all-ones when `chunks` is empty.
  Tensor residual_scale;
  /// Mean whitened weighted reconstruction error per token (~1 by
  /// construction); 1.0 when `chunks` is empty.
  double baseline_error = 1.0;
};

/// Trains `model` in place on `chunks` with WMSE weights `metric_weights`
/// ([M], matching every chunk's column count), then computes the residual
/// statistics. Leaves the model in eval mode.
TrainStats train_reconstructor(TransformerReconstructor& model,
                               std::span<const TrainChunk> chunks,
                               const Tensor& metric_weights,
                               const TrainOptions& options,
                               std::uint64_t seed);

}  // namespace ns
