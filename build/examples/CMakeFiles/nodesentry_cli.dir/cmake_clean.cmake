file(REMOVE_RECURSE
  "CMakeFiles/nodesentry_cli.dir/nodesentry_cli.cpp.o"
  "CMakeFiles/nodesentry_cli.dir/nodesentry_cli.cpp.o.d"
  "nodesentry_cli"
  "nodesentry_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nodesentry_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
