// Async front of the time-series store: the ServeEngine (or any producer)
// enqueues per-node sample batches; one consumer thread owns every store
// append. The queue is bounded and drops its *oldest* batch past the cap —
// same backpressure discipline as the engine's scoring queue: stale
// history is worth less than stalling the collector loop. Drops, depth and
// write latency are exposed as ns_store_* instruments.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "store/store.hpp"

namespace ns {

struct StoreWriterConfig {
  /// Bound on queued batches; past it the oldest batch is dropped. 0 = unbounded.
  std::size_t queue_capacity = 256;
};

class StoreWriter {
 public:
  /// One producer hand-off: every sample of one node, ticks strictly
  /// increasing and ahead of everything already written for that node.
  struct Batch {
    std::size_t node = 0;
    std::vector<StoreSample> samples;
  };

  /// Takes ownership of `store`; `registry` null means the process-global
  /// obs registry. The consumer thread starts immediately.
  explicit StoreWriter(TimeSeriesStore store, StoreWriterConfig config = {},
                       obs::Registry* registry = nullptr);
  /// Drains the queue, flushes the store, and joins the consumer. Errors
  /// are swallowed (destructors must not throw) — call drain() first when
  /// durability matters.
  ~StoreWriter();

  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  /// Never blocks on I/O: past queue_capacity the oldest queued batch is
  /// dropped (counted in ns_store_batches_dropped_total).
  void enqueue(Batch batch);

  /// Blocks until every queued batch is written, then flushes the store
  /// (seals pages, commits the index). After drain() the store is
  /// consistent on disk and safe to query through store().
  void drain();

  /// The underlying store. Only consistent between drain() (or
  /// construction) and the next enqueue() — the consumer thread owns the
  /// store while batches are in flight.
  const TimeSeriesStore& store() const { return store_; }

  std::uint64_t batches_enqueued() const;
  std::uint64_t batches_dropped() const;
  std::uint64_t samples_written() const;

 private:
  void run();

  TimeSeriesStore store_;
  StoreWriterConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< producer -> consumer
  std::condition_variable idle_cv_;   ///< consumer -> drain()
  std::deque<Batch> queue_;
  bool busy_ = false;  ///< consumer is mid-batch (store in use, unlocked)
  bool stop_ = false;
  std::uint64_t enqueued_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t written_ = 0;
  std::uint64_t pages_published_ = 0;  ///< pages already counted into obs

  obs::Counter* samples_written_counter_ = nullptr;
  obs::Counter* batches_dropped_counter_ = nullptr;
  obs::Counter* pages_sealed_counter_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Gauge* sealed_bytes_gauge_ = nullptr;
  obs::Histogram* batch_write_hist_ = nullptr;

  std::thread consumer_;
};

}  // namespace ns
