#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <span>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "nn/attention.hpp"
#include "nn/autoencoder.hpp"
#include "nn/linear.hpp"
#include "nn/lstm.hpp"
#include "nn/moe.hpp"
#include "nn/module.hpp"
#include "nn/optim.hpp"
#include "nn/positional.hpp"
#include "nn/transformer.hpp"

namespace ns {
namespace {

TEST(Linear, ShapesAndBias) {
  Rng rng(1);
  Linear fc(3, 5, rng);
  Var x = Var::constant(Tensor::ones(Shape{2, 3}));
  Var y = fc.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 5}));
  EXPECT_EQ(fc.parameters().size(), 2u);
  EXPECT_EQ(fc.parameter_count(), 3u * 5 + 5);
}

TEST(Linear, LearnsIdentityOnToyData) {
  Rng rng(2);
  Linear fc(2, 2, rng);
  Adam opt(fc.parameters(), 0.05f);
  Tensor input(Shape{4, 2}, {1, 0, 0, 1, 1, 1, 0.5f, -0.5f});
  float final_loss = 1e9f;
  for (int step = 0; step < 300; ++step) {
    opt.zero_grad();
    Var x = Var::constant(input);
    Var loss = vmse_loss(fc.forward(x), input);
    loss.backward();
    opt.step();
    final_loss = loss.value().at(0);
  }
  EXPECT_LT(final_loss, 1e-3f);
}

TEST(LayerNormLayer, NormalizesRows) {
  Rng rng(3);
  LayerNorm ln(8);
  Var x = Var::constant(Tensor::randn(Shape{4, 8}, rng, 5.0f));
  Var y = ln.forward(x);
  for (std::size_t i = 0; i < 4; ++i) {
    double mu = 0.0;
    for (std::size_t j = 0; j < 8; ++j) mu += y.value().at(i, j);
    EXPECT_NEAR(mu / 8.0, 0.0, 1e-4);
  }
}

TEST(FeedForward, OutputShapeMatchesInput) {
  Rng rng(4);
  FeedForward ffn(6, 12, rng);
  Var x = Var::constant(Tensor::randn(Shape{3, 6}, rng));
  EXPECT_EQ(ffn.forward(x).shape(), (Shape{3, 6}));
}

TEST(Attention, ShapeAndHeadCountValidation) {
  Rng rng(5);
  MultiHeadSelfAttention mha(12, 3, rng);
  Var x = Var::constant(Tensor::randn(Shape{7, 12}, rng));
  EXPECT_EQ(mha.forward(x).shape(), (Shape{7, 12}));
  EXPECT_THROW(MultiHeadSelfAttention(10, 3, rng), InvalidArgument);
}

TEST(Attention, PermutationSensitivityThroughValues) {
  // With identical tokens the attention output rows must be identical.
  Rng rng(6);
  MultiHeadSelfAttention mha(8, 2, rng);
  Tensor same(Shape{4, 8});
  for (std::size_t j = 0; j < 8; ++j)
    for (std::size_t i = 0; i < 4; ++i) same.at(i, j) = 0.3f * (j + 1);
  Var y = mha.forward(Var::constant(same));
  for (std::size_t j = 0; j < 8; ++j)
    for (std::size_t i = 1; i < 4; ++i)
      EXPECT_NEAR(y.value().at(i, j), y.value().at(0, j), 1e-5);
}

TEST(Attention, GradientFlowsToAllParams) {
  Rng rng(7);
  MultiHeadSelfAttention mha(6, 2, rng);
  Var x = Var::constant(Tensor::randn(Shape{5, 6}, rng));
  Var loss = vmean(vmul(mha.forward(x), mha.forward(x)));
  for (Var& p : mha.parameters()) p.zero_grad();
  loss.backward();
  for (const Var& p : mha.parameters()) {
    EXPECT_GT(max_abs(p.grad()), 0.0) << "dead parameter";
  }
}

TEST(MoE, GateProbsRouteTopK) {
  Rng rng(8);
  MoELayer moe(6, 12, 4, 2, rng);
  Var x = Var::constant(Tensor::randn(Shape{10, 6}, rng));
  Var y = moe.forward(x);
  EXPECT_EQ(y.shape(), (Shape{10, 6}));
  const auto& load = moe.last_expert_load();
  EXPECT_EQ(load.size(), 4u);
  EXPECT_EQ(std::accumulate(load.begin(), load.end(), 0u), 10u * 2);
}

TEST(MoE, Top1RoutesEachTokenOnce) {
  Rng rng(9);
  MoELayer moe(4, 8, 3, 1, rng);
  Var x = Var::constant(Tensor::randn(Shape{20, 4}, rng));
  moe.forward(x);
  const auto& load = moe.last_expert_load();
  EXPECT_EQ(std::accumulate(load.begin(), load.end(), 0u), 20u);
}

TEST(MoE, InvalidTopKRejected) {
  Rng rng(10);
  EXPECT_THROW(MoELayer(4, 8, 3, 4, rng), InvalidArgument);
  EXPECT_THROW(MoELayer(4, 8, 3, 0, rng), InvalidArgument);
}

TEST(MoE, AuxLossPositiveAndDifferentiable) {
  Rng rng(11);
  MoELayer moe(4, 8, 3, 1, rng);
  Var x = Var::constant(Tensor::randn(Shape{12, 4}, rng));
  moe.forward(x);
  Var aux = moe.aux_load_balance_loss();
  EXPECT_GT(aux.value().at(0), 0.0f);
  for (Var& p : moe.parameters()) p.zero_grad();
  aux.backward();
  // The gate weight must receive gradient from the aux loss.
  EXPECT_GT(max_abs(moe.parameters()[0].grad()), 0.0);
}

TEST(MoE, GradientReachesRoutedExpertsOnly) {
  Rng rng(12);
  MoELayer moe(4, 6, 2, 1, rng);
  Var x = Var::constant(Tensor::randn(Shape{8, 4}, rng));
  Var y = moe.forward(x);
  for (Var& p : moe.parameters()) p.zero_grad();
  vmean(vmul(y, y)).backward();
  const auto& load = moe.last_expert_load();
  // Parameters: [gate, expert0 fc1 w/b fc2 w/b, expert1 ...]
  auto params = moe.parameters();
  for (std::size_t e = 0; e < 2; ++e) {
    const double g = max_abs(params[1 + e * 4].grad());
    if (load[e] == 0) {
      EXPECT_EQ(g, 0.0) << "unused expert got gradient";
    } else {
      EXPECT_GT(g, 0.0) << "used expert got no gradient";
    }
  }
}

TEST(Positional, SinusoidalTableRange) {
  Tensor table = sinusoidal_position_table(50, 16);
  EXPECT_EQ(table.shape(), (Shape{50, 16}));
  for (float v : table.flat()) {
    EXPECT_LE(v, 1.0f);
    EXPECT_GE(v, -1.0f);
  }
  // Row 0 alternates sin(0)=0, cos(0)=1.
  EXPECT_EQ(table.at(0, 0), 0.0f);
  EXPECT_EQ(table.at(0, 1), 1.0f);
}

TEST(Positional, SegmentTermDistinguishesSegments) {
  Rng rng(13);
  SegmentPositionalEncoding pe(8, 64, 4, /*use_segment_term=*/true, rng);
  Var x = Var::constant(Tensor(Shape{2, 8}));  // zero tokens
  const std::vector<std::size_t> offsets{0, 0};
  const std::vector<std::size_t> segments{0, 1};
  Var y = pe.forward(x, offsets, segments);
  // Same offset, different segment -> different encodings.
  double diff = 0.0;
  for (std::size_t j = 0; j < 8; ++j)
    diff += std::abs(y.value().at(0, j) - y.value().at(1, j));
  EXPECT_GT(diff, 1e-4);
}

TEST(Positional, DisabledSegmentTermIgnoresSegmentIds) {
  Rng rng(14);
  SegmentPositionalEncoding pe(8, 64, 4, /*use_segment_term=*/false, rng);
  Var x = Var::constant(Tensor(Shape{2, 8}));
  const std::vector<std::size_t> offsets{3, 3};
  const std::vector<std::size_t> segments{0, 2};
  Var y = pe.forward(x, offsets, segments);
  for (std::size_t j = 0; j < 8; ++j)
    EXPECT_EQ(y.value().at(0, j), y.value().at(1, j));
}

TEST(Positional, OffsetsClampedToCapacity) {
  Rng rng(15);
  SegmentPositionalEncoding pe(4, 8, 2, true, rng);
  Var x = Var::constant(Tensor(Shape{1, 4}));
  const std::vector<std::size_t> offsets{100};  // beyond max_len
  const std::vector<std::size_t> segments{50};  // beyond max_segments
  EXPECT_NO_THROW(pe.forward(x, offsets, segments));
}

TransformerConfig small_config(std::size_t input_dim = 5) {
  TransformerConfig cfg;
  cfg.input_dim = input_dim;
  cfg.d_model = 12;
  cfg.num_layers = 2;
  cfg.num_heads = 3;
  cfg.ffn_hidden = 16;
  cfg.num_experts = 3;
  cfg.top_k = 1;
  cfg.max_position = 128;
  cfg.max_segments = 8;
  return cfg;
}

TEST(Transformer, ForwardShape) {
  Rng rng(16);
  TransformerReconstructor model(small_config(), rng);
  Var x = Var::constant(Tensor::randn(Shape{10, 5}, rng));
  Var y = model.forward(x, rng);
  EXPECT_EQ(y.shape(), (Shape{10, 5}));
}

TEST(Transformer, TrainsToReconstructStaticPattern) {
  Rng rng(17);
  TransformerConfig cfg = small_config(4);
  cfg.num_layers = 1;
  TransformerReconstructor model(cfg, rng);
  Adam opt(model.parameters(), 3e-3f);
  // A fixed, smooth pattern the model should memorize.
  Tensor pattern(Shape{12, 4});
  for (std::size_t t = 0; t < 12; ++t)
    for (std::size_t m = 0; m < 4; ++m)
      pattern.at(t, m) = std::sin(0.3 * t + m);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 120; ++step) {
    opt.zero_grad();
    Var out = model.forward(Var::constant(pattern), rng);
    Var loss = vmse_loss(out, pattern);
    Var aux = model.aux_loss();
    if (aux.defined()) loss = vadd(loss, aux);
    loss.backward();
    opt.step();
    if (step == 0) first = loss.value().at(0);
    last = loss.value().at(0);
  }
  EXPECT_LT(last, first * 0.25f) << "no training progress";
}

TEST(Transformer, MoEExpertLoadsReported) {
  Rng rng(18);
  TransformerReconstructor model(small_config(), rng);
  Var x = Var::constant(Tensor::randn(Shape{9, 5}, rng));
  model.forward(x, rng);
  const auto loads = model.expert_loads();
  EXPECT_EQ(loads.size(), 2u);  // one per layer
  for (const auto& layer_load : loads)
    EXPECT_EQ(std::accumulate(layer_load.begin(), layer_load.end(), 0u), 9u);
}

TEST(Transformer, DenseVariantHasNoAuxLoss) {
  Rng rng(19);
  TransformerConfig cfg = small_config();
  cfg.use_moe = false;
  TransformerReconstructor model(cfg, rng);
  Var x = Var::constant(Tensor::randn(Shape{4, 5}, rng));
  model.forward(x, rng);
  EXPECT_FALSE(model.aux_loss().defined());
  EXPECT_TRUE(model.expert_loads().empty());
}

TEST(Transformer, SegmentAwareForwardUsesMetadata) {
  Rng rng(20);
  TransformerReconstructor model(small_config(), rng);
  Tensor x = Tensor::randn(Shape{6, 5}, rng);
  const std::vector<std::size_t> offsets{0, 1, 2, 0, 1, 2};
  const std::vector<std::size_t> segments{0, 0, 0, 1, 1, 1};
  Var y1 = model.forward(Var::constant(x), offsets, segments, rng);
  const std::vector<std::size_t> one_segment{0, 0, 0, 0, 0, 0};
  const std::vector<std::size_t> seq_off{0, 1, 2, 3, 4, 5};
  Var y2 = model.forward(Var::constant(x), seq_off, one_segment, rng);
  // Different positional metadata must change the output.
  double diff = 0.0;
  for (std::size_t i = 0; i < y1.value().numel(); ++i)
    diff += std::abs(y1.value().at(i) - y2.value().at(i));
  EXPECT_GT(diff, 1e-4);
}

TEST(Transformer, BlockedForwardMatchesPerChunkForwardBitwise) {
  // The serve engine packs chunks from many nodes into one forward; with the
  // block-diagonal attention bias the packed result must equal running each
  // chunk separately — bit for bit, in eval mode.
  Rng rng(22);
  TransformerReconstructor model(small_config(), rng);
  model.set_training(false);
  const std::vector<std::size_t> block_lens{4, 3, 5};
  const std::size_t total = 12;
  Tensor x = Tensor::randn(Shape{total, 5}, rng);
  std::vector<std::size_t> offsets, segments;
  const std::vector<std::size_t> seg_of_block{2, 0, 5};
  const std::vector<std::size_t> base_of_block{0, 7, 3};
  for (std::size_t b = 0; b < block_lens.size(); ++b)
    for (std::size_t r = 0; r < block_lens[b]; ++r) {
      offsets.push_back(base_of_block[b] + r);
      segments.push_back(seg_of_block[b]);
    }

  Rng fwd_rng(0);
  const Var packed = model.forward_blocked(Var::constant(x), offsets,
                                           segments, fwd_rng, block_lens);
  ASSERT_EQ(packed.shape(), (Shape{total, 5}));

  std::size_t row = 0;
  for (std::size_t b = 0; b < block_lens.size(); ++b) {
    const Tensor chunk = slice_rows(x, row, row + block_lens[b]);
    const std::span<const std::size_t> off(offsets.data() + row,
                                           block_lens[b]);
    const std::span<const std::size_t> seg(segments.data() + row,
                                           block_lens[b]);
    Rng chunk_rng(0);
    const Var alone = model.forward(Var::constant(chunk), off, seg, chunk_rng);
    for (std::size_t r = 0; r < block_lens[b]; ++r)
      for (std::size_t m = 0; m < 5; ++m)
        ASSERT_EQ(packed.value().at(row + r, m), alone.value().at(r, m))
            << "block " << b << " row " << r << " metric " << m;
    row += block_lens[b];
  }
}

TEST(Lstm, CellStateShapes) {
  Rng rng(21);
  LSTMCell cell(3, 6, rng);
  auto st = cell.initial_state(2);
  Var x = Var::constant(Tensor::randn(Shape{2, 3}, rng));
  auto next = cell.step(x, st);
  EXPECT_EQ(next.h.shape(), (Shape{2, 6}));
  EXPECT_EQ(next.c.shape(), (Shape{2, 6}));
}

TEST(Lstm, AutoencoderLearnsConstantSequence) {
  Rng rng(22);
  LstmAutoencoder ae(2, 8, rng);
  Adam opt(ae.parameters(), 1e-2f);
  Tensor seq(Shape{6, 2});
  for (std::size_t t = 0; t < 6; ++t) {
    seq.at(t, 0) = 0.5f;
    seq.at(t, 1) = -0.25f;
  }
  float last = 1e9f;
  for (int step = 0; step < 150; ++step) {
    opt.zero_grad();
    Var loss = vmse_loss(ae.forward(Var::constant(seq)), seq);
    loss.backward();
    opt.step();
    last = loss.value().at(0);
  }
  EXPECT_LT(last, 0.01f);
}

TEST(DenseAE, ReconstructionImproves) {
  Rng rng(23);
  DenseAutoencoder ae(6, 10, 3, rng);
  Adam opt(ae.parameters(), 5e-3f);
  Tensor data = Tensor::randn(Shape{16, 6}, rng);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 150; ++step) {
    opt.zero_grad();
    Var loss = vmse_loss(ae.forward(Var::constant(data)), data);
    loss.backward();
    opt.step();
    if (step == 0) first = loss.value().at(0);
    last = loss.value().at(0);
  }
  EXPECT_LT(last, first * 0.5f);
}

TEST(Vae, OutputsAndLossFinite) {
  Rng rng(24);
  VariationalAutoencoder vae(5, 12, 3, rng);
  Tensor data = Tensor::randn(Shape{8, 5}, rng);
  auto out = vae.forward(Var::constant(data), rng);
  EXPECT_EQ(out.reconstruction.shape(), (Shape{8, 5}));
  EXPECT_EQ(out.mu.shape(), (Shape{8, 3}));
  Var loss = VariationalAutoencoder::loss(out, data);
  EXPECT_TRUE(std::isfinite(loss.value().at(0)));
}

TEST(Vae, TrainingReducesLoss) {
  Rng rng(25);
  VariationalAutoencoder vae(4, 16, 2, rng);
  Adam opt(vae.parameters(), 5e-3f);
  Tensor data(Shape{20, 4});
  for (std::size_t i = 0; i < 20; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      data.at(i, j) = std::sin(0.5 * i) * (j + 1) * 0.2f;
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 200; ++step) {
    opt.zero_grad();
    auto out = vae.forward(Var::constant(data), rng);
    Var loss = VariationalAutoencoder::loss(out, data);
    loss.backward();
    opt.step();
    if (step == 0) first = loss.value().at(0);
    last = loss.value().at(0);
  }
  EXPECT_LT(last, first * 0.5f);
}

TEST(Optim, SgdConvergesOnQuadratic) {
  Var w = Var::leaf(Tensor(Shape{1}, {5.0f}), true);
  Sgd opt({w}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.zero_grad();
    Var loss = vmul(w, w);
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(w.value().at(0), 0.0f, 1e-3f);
}

TEST(Optim, AdamConvergesOnQuadratic) {
  Var w = Var::leaf(Tensor(Shape{2}, {3.0f, -4.0f}), true);
  Adam opt({w}, 0.1f);
  for (int i = 0; i < 500; ++i) {
    opt.zero_grad();
    Var loss = vmean(vmul(w, w));
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(w.value().at(0), 0.0f, 1e-2f);
  EXPECT_NEAR(w.value().at(1), 0.0f, 1e-2f);
}

TEST(Serialize, RoundTripPreservesParameters) {
  Rng rng(26);
  TransformerReconstructor model(small_config(), rng);
  std::stringstream buffer;
  save_parameters(model, buffer);

  Rng rng2(999);  // different init
  TransformerReconstructor restored(small_config(), rng2);
  load_parameters(restored, buffer);

  auto a = model.parameters();
  auto b = restored.parameters();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < a[i].value().numel(); ++j)
      EXPECT_EQ(a[i].value().at(j), b[i].value().at(j));
}

TEST(Serialize, MismatchedArchitectureRejected) {
  Rng rng(27);
  TransformerReconstructor model(small_config(), rng);
  std::stringstream buffer;
  save_parameters(model, buffer);
  Rng rng2(28);
  TransformerConfig other = small_config();
  other.d_model = 24;
  TransformerReconstructor different(other, rng2);
  EXPECT_THROW(load_parameters(different, buffer), InvalidArgument);
}

TEST(Serialize, TruncatedStreamRejected) {
  Rng rng(29);
  Linear fc(4, 4, rng);
  std::stringstream buffer;
  save_parameters(fc, buffer);
  std::string blob = buffer.str();
  std::stringstream truncated(blob.substr(0, blob.size() / 2));
  Rng rng2(30);
  Linear fc2(4, 4, rng2);
  EXPECT_THROW(load_parameters(fc2, truncated), InvalidArgument);
}

TEST(Module, SetTrainingPropagates) {
  Rng rng(31);
  TransformerReconstructor model(small_config(), rng);
  model.set_training(false);
  EXPECT_FALSE(model.training());
  model.set_training(true);
  EXPECT_TRUE(model.training());
}

}  // namespace
}  // namespace ns
