// Additional edge-case coverage for the core pipeline pieces.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/cluster_library.hpp"
#include "core/nodesentry.hpp"
#include "sim/dataset_builder.hpp"

namespace ns {
namespace {

TEST(ClusterLibraryEdge, MatchOnEmptyLibraryThrows) {
  ClusterLibrary library;
  EXPECT_THROW(library.match({1.0f, 2.0f}, 2.0), InvalidArgument);
}

TEST(ClusterLibraryEdge, UnmatchedWhenFarBeyondRadius) {
  ClusterLibrary library;
  ClusterEntry entry;
  entry.centroid = {0.0f, 0.0f};
  entry.radius = 1.0;
  library.clusters().push_back(std::move(entry));
  const MatchResult near = library.match({0.5f, 0.5f}, 2.0);
  EXPECT_TRUE(near.matched);
  const MatchResult far = library.match({100.0f, 100.0f}, 2.0);
  EXPECT_FALSE(far.matched);
  EXPECT_EQ(far.cluster, 0u);  // still reports the nearest cluster
}

TEST(ClusterLibraryEdge, ZeroRadiusClusterStillMatchesItself) {
  // A singleton cluster has radius 0; its own centroid must match.
  ClusterLibrary library;
  ClusterEntry entry;
  entry.centroid = {3.0f};
  entry.radius = 0.0;
  library.clusters().push_back(std::move(entry));
  EXPECT_TRUE(library.match({3.0f}, 2.5).matched);
}

TEST(ClusterLibraryEdge, NearestMemberPicksClosest) {
  ClusterLibrary library;
  ClusterEntry entry;
  entry.centroid = {0.0f};
  entry.member_features = {{0.0f}, {5.0f}, {10.0f}};
  library.clusters().push_back(std::move(entry));
  EXPECT_EQ(library.nearest_member(0, {6.0f}), 1u);
  EXPECT_EQ(library.nearest_member(0, {-1.0f}), 0u);
  EXPECT_THROW(library.nearest_member(5, {0.0f}), InvalidArgument);
}

TEST(ClusterLibraryEdge, ScaleWithoutFittedScalerIsIdentity) {
  ClusterLibrary library;
  const std::vector<float> raw{1.0f, 2.0f};
  EXPECT_EQ(library.scale(raw), raw);
}

class ModelTokensTest : public ::testing::Test {
 protected:
  static MtsDataset two_metric_dataset() {
    MtsDataset ds;
    for (int m = 0; m < 2; ++m) {
      MetricMeta meta;
      meta.name = "m" + std::to_string(m);
      ds.metrics.push_back(meta);
    }
    NodeSeries node;
    node.node_name = "n";
    node.values.assign(2, std::vector<float>(40));
    for (std::size_t t = 0; t < 40; ++t) {
      node.values[0][t] = t < 20 ? 10.0f : 14.0f;
      node.values[1][t] = std::sin(0.4f * static_cast<float>(t));
    }
    ds.nodes.push_back(node);
    ds.jobs.push_back({JobSpan{1, 0, 40}});
    return ds;
  }

  static NodeSentryConfig tiny_config() {
    NodeSentryConfig config;
    config.model.d_model = 12;
    config.model.num_heads = 2;
    config.model.num_layers = 1;
    config.train_epochs = 1;
    config.match_period = 8;  // leading window = first 8 steps
    return config;
  }
};

TEST_F(ModelTokensTest, CenteringSubtractsLeadingWindowMean) {
  NodeSentryConfig config = tiny_config();
  config.center_tokens = true;
  NodeSentry sentry(config);
  MtsDataset ds = two_metric_dataset();
  sentry.fit(ds, 40);
  const Tensor tokens = sentry.model_tokens(CoreSegment{0, 0, 40, 1});
  // Leading window of the processed data has mean ~0 after centering.
  for (std::size_t m = 0; m < 2; ++m) {
    double lead_mean = 0.0;
    for (std::size_t t = 0; t < 8; ++t) lead_mean += tokens.at(t, m);
    EXPECT_NEAR(lead_mean / 8.0, 0.0, 1e-4) << "metric " << m;
  }
}

TEST_F(ModelTokensTest, CenteringDisabledKeepsValues) {
  NodeSentryConfig config = tiny_config();
  config.center_tokens = false;
  NodeSentry sentry(config);
  MtsDataset ds = two_metric_dataset();
  sentry.fit(ds, 40);
  const Tensor with_cap = sentry.model_tokens(CoreSegment{0, 0, 40, 1}, 16);
  EXPECT_EQ(with_cap.size(0), 16u);
  // Values equal the processed series directly.
  EXPECT_FLOAT_EQ(with_cap.at(0, 0),
                  sentry.processed().nodes[0].values[0][0]);
}

TEST(NodeSentryEdge, DetectBeforeFitThrows) {
  NodeSentry sentry(NodeSentryConfig{});
  EXPECT_THROW(sentry.detect(), InvalidArgument);
}

TEST(NodeSentryEdge, FitRejectsBadTrainEnd) {
  SimDatasetConfig config = d2_sim_config(0.25, 77);
  const SimDataset sim = build_sim_dataset(config);
  NodeSentry sentry(NodeSentryConfig{});
  EXPECT_THROW(sentry.fit(sim.data, 0), InvalidArgument);
  EXPECT_THROW(sentry.fit(sim.data, sim.data.num_timestamps() + 5),
               InvalidArgument);
}

TEST(NodeSentryEdge, DeterministicAcrossRuns) {
  SimDatasetConfig sim_config = d2_sim_config(0.4, 88);
  sim_config.anomaly_ratio = 0.02;
  const SimDataset sim = build_sim_dataset(sim_config);
  NodeSentryConfig config;
  config.train_epochs = 2;
  config.model.num_layers = 1;
  config.model.d_model = 12;
  config.model.num_heads = 2;
  config.seed = 31337;
  auto run_once = [&] {
    NodeSentry sentry(config);
    sentry.fit(sim.data, sim.train_end);
    return sentry.detect();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.detections.size(), b.detections.size());
  for (std::size_t n = 0; n < a.detections.size(); ++n) {
    EXPECT_EQ(a.detections[n].predictions, b.detections[n].predictions);
    for (std::size_t t = 0; t < a.detections[n].scores.size(); ++t)
      ASSERT_EQ(a.detections[n].scores[t], b.detections[n].scores[t]);
  }
}

// ------------------------------------------------ k-sigma threshold edges

constexpr float kNaNf = std::numeric_limits<float>::quiet_NaN();
constexpr float kInff = std::numeric_limits<float>::infinity();

TEST(KsigmaEdge, WindowZeroThrows) {
  const std::vector<float> scores(20, 1.0f);
  EXPECT_THROW(ksigma_flags(scores, 0, 20, 0, 3.0), InvalidArgument);
}

TEST(KsigmaEdge, BadRangeThrows) {
  const std::vector<float> scores(20, 1.0f);
  EXPECT_THROW(ksigma_flags(scores, 10, 5, 4, 3.0), InvalidArgument);
  EXPECT_THROW(ksigma_flags(scores, 0, 21, 4, 3.0), InvalidArgument);
}

TEST(KsigmaEdge, EmptyRangeIsAllZeros) {
  const std::vector<float> scores(20, 5.0f);
  const auto flags = ksigma_flags(scores, 7, 7, 4, 3.0);
  EXPECT_EQ(std::count(flags.begin(), flags.end(), 1), 0);
}

TEST(KsigmaEdge, WindowLargerThanSeriesStillFlagsSpike) {
  std::vector<float> scores(30, 1.0f);
  scores[25] = 100.0f;
  const auto flags = ksigma_flags(scores, 0, 30, 1000, 3.0, 0.2);
  EXPECT_EQ(flags[25], 1);
  EXPECT_EQ(std::count(flags.begin(), flags.end(), 1), 1);
}

TEST(KsigmaEdge, ZeroVarianceWindowDoesNotSelfFlag) {
  // A perfectly flat window must not flag its own continuation, but a
  // genuine jump out of the flat window must still trigger.
  std::vector<float> flat(40, 2.0f);
  const auto none = ksigma_flags(flat, 0, 40, 10, 3.0, 0.2);
  EXPECT_EQ(std::count(none.begin(), none.end(), 1), 0);
  flat[35] = 10.0f;
  const auto one = ksigma_flags(flat, 0, 40, 10, 3.0, 0.2);
  EXPECT_EQ(one[35], 1);
}

TEST(KsigmaEdge, NonFiniteScoresNeverFlaggedNorPoisoning) {
  std::vector<float> scores(60, 1.0f);
  for (std::size_t t = 20; t < 30; ++t) scores[t] = kNaNf;
  scores[30] = kInff;
  scores[50] = 100.0f;  // genuine spike after the corrupted stretch
  const auto flags = ksigma_flags(scores, 0, 60, 15, 3.0, 0.2);
  for (std::size_t t = 20; t <= 30; ++t) EXPECT_EQ(flags[t], 0) << t;
  // The NaN burst must not have wiped the statistics: the later real
  // spike is still caught.
  EXPECT_EQ(flags[50], 1);
  EXPECT_EQ(std::count(flags.begin(), flags.end(), 1), 1);
}

// ------------------------------------------------- causal median filter

TEST(MedianFilterEdge, WidthOneAndEmptyInputPassThrough) {
  const std::vector<float> scores{3.0f, 1.0f, 2.0f};
  EXPECT_EQ(causal_median_filter(scores, 1), scores);
  EXPECT_TRUE(causal_median_filter({}, 5).empty());
}

TEST(MedianFilterEdge, WidthLargerThanSeriesUsesPrefix) {
  const std::vector<float> scores{1.0f, 3.0f, 2.0f};
  const auto out = causal_median_filter(scores, 100);
  EXPECT_EQ(out[0], 1.0f);  // median{1}
  EXPECT_EQ(out[1], 3.0f);  // median{1,3} -> upper middle
  EXPECT_EQ(out[2], 2.0f);  // median{1,2,3}
}

TEST(MedianFilterEdge, RemovesSingleSpikeKeepsPlateau) {
  std::vector<float> scores(20, 1.0f);
  scores[10] = 50.0f;  // lone spike: filtered out
  for (std::size_t t = 14; t < 20; ++t) scores[t] = 50.0f;  // real plateau
  const auto out = causal_median_filter(scores, 3);
  EXPECT_EQ(out[10], 1.0f);
  EXPECT_EQ(out[16], 50.0f);
}

TEST(MedianFilterEdge, NonFiniteSamplesExcludedFromWindow) {
  std::vector<float> scores{1.0f, kNaNf, 2.0f, kInff, 3.0f};
  const auto out = causal_median_filter(scores, 3);
  EXPECT_EQ(out[2], 2.0f);  // median of finite {1, 2}
  EXPECT_EQ(out[4], 3.0f);  // median of finite {2, 3}
  EXPECT_TRUE(std::isfinite(out[2]));
}

TEST(MedianFilterEdge, AllNonFiniteWindowPassesInputThrough) {
  const std::vector<float> scores{kNaNf, kNaNf, kNaNf};
  const auto out = causal_median_filter(scores, 2);
  for (float v : out) EXPECT_TRUE(std::isnan(v));
}

}  // namespace
}  // namespace ns
