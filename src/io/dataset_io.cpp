#include "io/dataset_io.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>

#include "common/error.hpp"
#include "io/csv.hpp"

namespace ns {
namespace fs = std::filesystem;
namespace {

MetricCategory category_from_name(const std::string& name) {
  if (name == "CPU") return MetricCategory::kCpu;
  if (name == "Memory") return MetricCategory::kMemory;
  if (name == "Filesystem") return MetricCategory::kFilesystem;
  if (name == "Network") return MetricCategory::kNetwork;
  if (name == "Process") return MetricCategory::kProcess;
  if (name == "System") return MetricCategory::kSystem;
  throw ParseError("unknown metric category: " + name);
}

}  // namespace

void save_dataset(const MtsDataset& dataset, const std::string& directory) {
  dataset.validate();
  fs::create_directories(fs::path(directory) / "nodes");

  {
    std::vector<std::vector<std::string>> rows;
    for (const MetricMeta& meta : dataset.metrics)
      rows.push_back({meta.name, meta.semantic_group,
                      metric_category_name(meta.category),
                      std::to_string(meta.unit_id)});
    write_csv((fs::path(directory) / "metrics.csv").string(),
              {"name", "semantic_group", "category", "unit_id"}, rows);
  }
  for (const NodeSeries& node : dataset.nodes) {
    std::vector<std::string> header{"timestamp"};
    for (const MetricMeta& meta : dataset.metrics) header.push_back(meta.name);
    std::vector<std::vector<std::string>> rows;
    const std::size_t T = node.num_timestamps();
    rows.reserve(T);
    for (std::size_t t = 0; t < T; ++t) {
      std::vector<std::string> row{std::to_string(t)};
      for (std::size_t m = 0; m < node.num_metrics(); ++m) {
        const float v = node.values[m][t];
        row.push_back(std::isnan(v) ? std::string() : format_double(v, 6));
      }
      rows.push_back(std::move(row));
    }
    write_csv((fs::path(directory) / "nodes" / (node.node_name + ".csv"))
                  .string(),
              header, rows);
  }
  {
    std::vector<std::vector<std::string>> rows;
    for (std::size_t n = 0; n < dataset.jobs.size(); ++n)
      for (const JobSpan& span : dataset.jobs[n])
        rows.push_back({dataset.nodes[n].node_name,
                        std::to_string(span.job_id),
                        std::to_string(span.begin), std::to_string(span.end)});
    write_csv((fs::path(directory) / "jobs.csv").string(),
              {"node", "job_id", "begin", "end"}, rows);
  }
  {
    std::vector<std::vector<std::string>> rows;
    for (std::size_t n = 0; n < dataset.labels.size(); ++n)
      for (std::size_t t = 0; t < dataset.labels[n].size(); ++t)
        if (dataset.labels[n][t])
          rows.push_back({dataset.nodes[n].node_name, std::to_string(t)});
    write_csv((fs::path(directory) / "labels.csv").string(),
              {"node", "timestamp"}, rows);
  }
  write_csv((fs::path(directory) / "meta.csv").string(), {"key", "value"},
            {{"interval_seconds", format_double(dataset.interval_seconds, 3)}});
}

MtsDataset load_dataset(const std::string& directory) {
  MtsDataset dataset;
  const auto metric_rows =
      read_csv((fs::path(directory) / "metrics.csv").string());
  NS_REQUIRE(metric_rows.size() >= 2, "metrics.csv empty in " << directory);
  for (std::size_t r = 1; r < metric_rows.size(); ++r) {
    const auto& row = metric_rows[r];
    NS_REQUIRE(row.size() == 4, "metrics.csv: bad row " << r);
    MetricMeta meta;
    meta.name = row[0];
    meta.semantic_group = row[1];
    meta.category = category_from_name(row[2]);
    meta.unit_id = std::stoi(row[3]);
    dataset.metrics.push_back(std::move(meta));
  }
  const std::size_t M = dataset.metrics.size();

  std::vector<fs::path> node_files;
  for (const auto& file : fs::directory_iterator(fs::path(directory) / "nodes"))
    if (file.path().extension() == ".csv") node_files.push_back(file.path());
  std::sort(node_files.begin(), node_files.end());
  std::map<std::string, std::size_t> node_index;
  for (const auto& path : node_files) {
    const auto rows = read_csv(path.string());
    NS_REQUIRE(rows.size() >= 2, "empty node file " << path.string());
    NS_REQUIRE(rows[0].size() == M + 1,
               "node file " << path.string() << " has " << rows[0].size() - 1
                            << " metrics, expected " << M);
    NodeSeries node;
    node.node_name = path.stem().string();
    node.values.assign(M, std::vector<float>(rows.size() - 1));
    for (std::size_t r = 1; r < rows.size(); ++r) {
      NS_REQUIRE(rows[r].size() == M + 1,
                 "node file " << path.string() << ": ragged row " << r);
      for (std::size_t m = 0; m < M; ++m) {
        const std::string& cell = rows[r][m + 1];
        node.values[m][r - 1] =
            cell.empty() ? kMissingValue : std::stof(cell);
      }
    }
    node_index[node.node_name] = dataset.nodes.size();
    dataset.nodes.push_back(std::move(node));
  }
  NS_REQUIRE(!dataset.nodes.empty(), "no node files in " << directory);
  const std::size_t T = dataset.num_timestamps();

  dataset.jobs.assign(dataset.nodes.size(), {});
  const auto job_rows = read_csv((fs::path(directory) / "jobs.csv").string());
  for (std::size_t r = 1; r < job_rows.size(); ++r) {
    const auto& row = job_rows[r];
    NS_REQUIRE(row.size() == 4, "jobs.csv: bad row " << r);
    const auto it = node_index.find(row[0]);
    NS_REQUIRE(it != node_index.end(), "jobs.csv: unknown node " << row[0]);
    dataset.jobs[it->second].push_back(JobSpan{
        std::stoll(row[1]), std::stoul(row[2]), std::stoul(row[3])});
  }

  dataset.labels.assign(dataset.nodes.size(),
                        std::vector<std::uint8_t>(T, 0));
  if (fs::exists(fs::path(directory) / "labels.csv")) {
    const auto label_rows =
        read_csv((fs::path(directory) / "labels.csv").string());
    for (std::size_t r = 1; r < label_rows.size(); ++r) {
      const auto& row = label_rows[r];
      NS_REQUIRE(row.size() == 2, "labels.csv: bad row " << r);
      const auto it = node_index.find(row[0]);
      NS_REQUIRE(it != node_index.end(), "labels.csv: unknown node "
                                             << row[0]);
      const std::size_t t = std::stoul(row[1]);
      NS_REQUIRE(t < T, "labels.csv: timestamp out of range");
      dataset.labels[it->second][t] = 1;
    }
  }

  if (fs::exists(fs::path(directory) / "meta.csv")) {
    const auto meta_rows =
        read_csv((fs::path(directory) / "meta.csv").string());
    for (std::size_t r = 1; r < meta_rows.size(); ++r)
      if (meta_rows[r].size() == 2 && meta_rows[r][0] == "interval_seconds")
        dataset.interval_seconds = std::stod(meta_rows[r][1]);
  }
  dataset.validate();
  return dataset;
}

}  // namespace ns
