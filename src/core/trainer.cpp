#include "core/trainer.hpp"

#include <algorithm>
#include <numeric>
#include <optional>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/optim.hpp"
#include "tensor/autograd.hpp"
#include "tensor/kernels.hpp"

namespace ns {

TrainStats train_reconstructor(TransformerReconstructor& model,
                               std::span<const TrainChunk> chunks,
                               const Tensor& metric_weights,
                               const TrainOptions& options,
                               std::uint64_t seed) {
  const std::size_t M = metric_weights.numel();
  TrainStats stats;
  if (chunks.empty()) {
    // Degenerate members (too short to chunk): neutral scoring statistics.
    stats.residual_scale = Tensor::ones(Shape{M});
    stats.baseline_error = 1.0;
    return stats;
  }
  for (const TrainChunk& chunk : chunks)
    NS_REQUIRE(chunk.tokens.size(1) == M,
               "train chunk has " << chunk.tokens.size(1) << " metrics, "
                                  << "weights have " << M);

  Rng rng(seed);
  model.set_training(true);
  Adam optimizer(model.parameters(), options.learning_rate);

  // ---- Batched mini-batch training: B chunks per Adam step, packed into
  // one block-diagonal forward (attention never crosses a chunk boundary,
  // every other stage is per-token). The loss is the WMSE over the whole
  // batch, so the step follows the batch-mean gradient; at B == 1 the RNG
  // stream, the forward graph and the loss reduce exactly to the classic
  // one-step-per-chunk trainer, bit for bit. At B > 1 the optimizer
  // trajectory intentionally differs (B stochastic steps collapse into one
  // averaged step) — Adam's per-parameter normalization keeps the step
  // scale comparable; detection quality is validated end-to-end in tests.
  const std::size_t B = std::max<std::size_t>(options.batch, 1);
  // The batched trainer also opts into the fast kernel variants: training at
  // B > 1 already follows a different (equally valid) optimizer trajectory,
  // so it owes no bitwise reproduction of the classic kernel — while B == 1
  // keeps the canonical kernel and stays bit-identical to the classic
  // trainer. The scope ends before the residual-statistics pass, which is
  // batch-size-invariant and must stay on the canonical kernel.
  std::optional<FastKernelScope> fast_kernels;
  if (B > 1) fast_kernels.emplace();
  std::vector<std::size_t> order(chunks.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::size_t> offsets;
  std::vector<std::size_t> seg_ids;
  std::vector<std::size_t> block_lens;
  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    // Fisher–Yates shuffle for stochastic chunk order.
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
    for (std::size_t base = 0; base < order.size(); base += B) {
      const std::size_t stop = std::min(order.size(), base + B);
      std::size_t rows = 0;
      for (std::size_t i = base; i < stop; ++i)
        rows += chunks[order[i]].tokens.size(0);
      // Assemble the batch: clean targets and corrupted inputs stacked
      // row-wise. Denoising corruption (additive Gaussian noise plus
      // whole-token drops) draws in chunk order, so B == 1 consumes the
      // RNG exactly like the per-chunk trainer did; the loss targets the
      // clean tokens.
      Tensor clean(Shape{rows, M});
      Tensor corrupted(Shape{rows, M});
      offsets.clear();
      seg_ids.clear();
      block_lens.clear();
      std::size_t r0 = 0;
      for (std::size_t i = base; i < stop; ++i) {
        const TrainChunk& chunk = chunks[order[i]];
        const std::size_t len = chunk.tokens.size(0);
        std::copy_n(chunk.tokens.data(), len * M, clean.data() + r0 * M);
        float* cor = corrupted.data() + r0 * M;
        std::copy_n(chunk.tokens.data(), len * M, cor);
        for (std::size_t t = 0; t < len; ++t) {
          if (options.denoise_token_drop > 0.0f &&
              rng.bernoulli(options.denoise_token_drop)) {
            for (std::size_t m = 0; m < M; ++m) cor[t * M + m] = 0.0f;
            continue;
          }
          if (options.denoise_noise > 0.0f)
            for (std::size_t m = 0; m < M; ++m)
              cor[t * M + m] += static_cast<float>(
                  rng.gaussian(0.0, options.denoise_noise));
        }
        offsets.insert(offsets.end(), chunk.offsets.begin(),
                       chunk.offsets.end());
        seg_ids.insert(seg_ids.end(), len, chunk.segment_id);
        block_lens.push_back(len);
        r0 += len;
      }
      optimizer.zero_grad();
      Var out = model.forward_blocked(Var::constant(std::move(corrupted)),
                                      offsets, seg_ids, rng, block_lens);
      Var loss = vwmse_loss(out, clean, metric_weights);
      Var aux = model.aux_loss();
      if (aux.defined()) loss = vadd(loss, aux);
      loss.backward();
      optimizer.step();
    }
  }
  fast_kernels.reset();
  model.set_training(false);

  // ---- Residual statistics on the clean member chunks: per-metric mean
  // squared residual (for whitening) and the resulting whitened baseline
  // error. Eval forwards reuse the block-diagonal batching; each chunk's
  // reconstruction is bitwise independent of its batch-mates, so the
  // statistics are batch-size-invariant. The residual grid is filled by
  // the pool — one chunk per shard, boundaries a pure function of the
  // chunk list (the same fixed-block contract as the kernel layer) — and
  // folded sequentially in chunk order, so the statistics are identical
  // at any thread count.
  std::vector<Tensor> outputs(chunks.size());
  for (std::size_t bbase = 0; bbase < chunks.size(); bbase += B) {
    const std::size_t bstop = std::min(chunks.size(), bbase + B);
    std::size_t rows = 0;
    for (std::size_t i = bbase; i < bstop; ++i)
      rows += chunks[i].tokens.size(0);
    Tensor x(Shape{rows, M});
    offsets.clear();
    seg_ids.clear();
    block_lens.clear();
    std::size_t r0 = 0;
    for (std::size_t i = bbase; i < bstop; ++i) {
      const TrainChunk& chunk = chunks[i];
      const std::size_t len = chunk.tokens.size(0);
      std::copy_n(chunk.tokens.data(), len * M, x.data() + r0 * M);
      offsets.insert(offsets.end(), chunk.offsets.begin(),
                     chunk.offsets.end());
      seg_ids.insert(seg_ids.end(), len, chunk.segment_id);
      block_lens.push_back(len);
      r0 += len;
    }
    const Var out = model.forward_blocked(Var::constant(std::move(x)),
                                          offsets, seg_ids, rng, block_lens);
    r0 = 0;
    for (std::size_t i = bbase; i < bstop; ++i) {
      const std::size_t len = chunks[i].tokens.size(0);
      outputs[i] = bstop - bbase == 1 ? out.value()
                                      : slice_rows(out.value(), r0, r0 + len);
      r0 += len;
    }
  }
  // Per-chunk signed residuals, computed in parallel (on a worker thread of
  // the same pool this degrades serially — same values either way, each
  // cell is written by exactly one task).
  std::vector<std::vector<double>> diffs(chunks.size());
  parallel_for(
      0, chunks.size(),
      [&](std::size_t c) {
        const TrainChunk& chunk = chunks[c];
        const std::size_t len = chunk.tokens.size(0);
        diffs[c].resize(len * M);
        // The subtraction happens in float, exactly as the classic sweep's
        // `double d = out - chunk` (float arithmetic widened on assignment).
        for (std::size_t t = 0; t < len; ++t)
          for (std::size_t m = 0; m < M; ++m)
            diffs[c][t * M + m] = outputs[c].at(t, m) - chunk.tokens.at(t, m);
      },
      options.pool, /*grain=*/1);
  std::vector<double> resid(M, 0.0);
  std::size_t err_count = 0;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    const std::size_t len = chunks[c].tokens.size(0);
    for (std::size_t t = 0; t < len; ++t) {
      for (std::size_t m = 0; m < M; ++m) {
        const double d = diffs[c][t * M + m];
        resid[m] += d * d;
      }
      ++err_count;
    }
  }
  stats.residual_scale = Tensor(Shape{M});
  for (std::size_t m = 0; m < M; ++m)
    stats.residual_scale.at(m) = static_cast<float>(std::max(
        1e-6, err_count > 0 ? resid[m] / static_cast<double>(err_count)
                            : 1.0));
  // Whitened baseline (mean over member tokens of the online score form).
  double err_sum = 0.0;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    const std::size_t len = chunks[c].tokens.size(0);
    for (std::size_t t = 0; t < len; ++t) {
      double err = 0.0;
      for (std::size_t m = 0; m < M; ++m) {
        const double d = diffs[c][t * M + m];
        err += metric_weights.at(m) * d * d / stats.residual_scale.at(m);
      }
      err_sum += err / static_cast<double>(M);
    }
  }
  stats.baseline_error =
      err_count > 0 ? std::max(1e-6, err_sum / err_count) : 1.0;
  return stats;
}

}  // namespace ns
