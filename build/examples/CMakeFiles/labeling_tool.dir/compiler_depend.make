# Empty compiler generated dependencies file for labeling_tool.
# This may be replaced when dependencies are built.
