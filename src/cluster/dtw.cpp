#include "cluster/dtw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace ns {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Shared rolling-array DTW core; cost(i, j) supplies the local cost.
template <typename CostFn>
double dtw_core(std::size_t n, std::size_t m, std::size_t band,
                const CostFn& cost) {
  NS_REQUIRE(n > 0 && m > 0, "dtw: empty series");
  const std::size_t effective_band =
      band == 0 ? std::max(n, m)
                : std::max(band, n > m ? n - m : m - n);
  std::vector<double> prev(m + 1, kInf), curr(m + 1, kInf);
  prev[0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    const std::size_t j_lo =
        i > effective_band ? i - effective_band : 1;
    const std::size_t j_hi = std::min(m, i + effective_band);
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double c = cost(i - 1, j - 1);
      curr[j] = c + std::min({prev[j], curr[j - 1], prev[j - 1]});
    }
    std::swap(prev, curr);
  }
  return std::sqrt(prev[m]);
}

}  // namespace

double dtw_distance(std::span<const float> a, std::span<const float> b,
                    std::size_t band) {
  return dtw_core(a.size(), b.size(), band, [&](std::size_t i, std::size_t j) {
    const double d = static_cast<double>(a[i]) - b[j];
    return d * d;
  });
}

double dtw_distance_multivariate(const std::vector<std::vector<float>>& a,
                                 const std::vector<std::vector<float>>& b,
                                 std::size_t band) {
  NS_REQUIRE(!a.empty() && a.size() == b.size(),
             "multivariate dtw: metric count mismatch");
  const std::size_t n = a.front().size();
  const std::size_t m = b.front().size();
  for (const auto& series : a)
    NS_REQUIRE(series.size() == n, "multivariate dtw: ragged series a");
  for (const auto& series : b)
    NS_REQUIRE(series.size() == m, "multivariate dtw: ragged series b");
  return dtw_core(n, m, band, [&](std::size_t i, std::size_t j) {
    double c = 0.0;
    for (std::size_t metric = 0; metric < a.size(); ++metric) {
      const double d = static_cast<double>(a[metric][i]) - b[metric][j];
      c += d * d;
    }
    return c;
  });
}

std::vector<std::vector<double>> dtw_distance_matrix(
    const std::vector<std::vector<std::vector<float>>>& segments,
    std::size_t band) {
  const std::size_t n = segments.size();
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));
  parallel_for(0, n, [&](std::size_t i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d =
          dtw_distance_multivariate(segments[i], segments[j], band);
      matrix[i][j] = d;
      matrix[j][i] = d;
    }
  });
  return matrix;
}

}  // namespace ns
