file(REMOVE_RECURSE
  "CMakeFiles/ns_features.dir/extract.cpp.o"
  "CMakeFiles/ns_features.dir/extract.cpp.o.d"
  "CMakeFiles/ns_features.dir/fft.cpp.o"
  "CMakeFiles/ns_features.dir/fft.cpp.o.d"
  "CMakeFiles/ns_features.dir/pca.cpp.o"
  "CMakeFiles/ns_features.dir/pca.cpp.o.d"
  "libns_features.a"
  "libns_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
