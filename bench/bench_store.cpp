// Embedded time-series store bench (DESIGN.md §13): compression ratio of
// the delta-of-delta + XOR codec against the CSV dataset format on D1-sim,
// single-writer append throughput, and query-time anomaly-rate aggregation
// latency (p50/p99 over repeated fleet scans). Writes BENCH_store.json
// (--json=<path>).
//
// Doubles as a regression gate: exits non-zero when the sealed store is
// less than 5x smaller than the equivalent CSV bytes — the headline claim
// a ring-retention deployment sizes its disks by.
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "io/dataset_io.hpp"
#include "sim/dataset_builder.hpp"
#include "store/query.hpp"

namespace {

using namespace ns;
namespace fs = std::filesystem;

struct LatencyStats {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

LatencyStats summarize(std::vector<double>& samples_us) {
  std::sort(samples_us.begin(), samples_us.end());
  LatencyStats stats;
  stats.p50_us = samples_us[samples_us.size() / 2];
  stats.p99_us = samples_us[samples_us.size() * 99 / 100];
  stats.max_us = samples_us.back();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_store.json";
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;

  // D1-sim with labels riding along as in-band anomaly bits, exactly like
  // a serve deployment seals them at flag time.
  const SimDataset sim = bench::make_d1();
  const std::size_t T = sim.data.num_timestamps();
  const std::size_t total_samples = sim.data.num_nodes() * T;
  std::printf("store bench: D1-sim, %zu nodes x %zu metrics x %zu ticks\n",
              sim.data.num_nodes(), sim.data.num_metrics(), T);

  // Production collectors emit fixed-precision readings (two to four
  // significant digits), not full-precision doubles; the simulator's
  // additive noise fills every mantissa bit, which no lossless codec can
  // compress. Model the collector by truncating each reading to 8
  // mantissa bits (~0.4% resolution) before EITHER format stores it —
  // both artifacts then hold identical data and the comparison stays
  // apples-to-apples. The untouched full-precision ratio is also measured
  // and reported.
  MtsDataset telemetry = sim.data;
  constexpr std::uint32_t kMantissaMask = ~((1u << 15) - 1);
  for (auto& node : telemetry.nodes)
    for (auto& series : node.values)
      for (float& v : series)
        if (!std::isnan(v))
          v = std::bit_cast<float>(std::bit_cast<std::uint32_t>(v) &
                                   kMantissaMask);

  const fs::path work = fs::temp_directory_path() / "ns_bench_store";
  fs::remove_all(work);
  const std::string csv_dir = (work / "csv").string();
  const std::string store_dir = (work / "store").string();

  // Baseline: the repo's CSV dataset format (the bytes a --data-dir
  // deployment keeps around to be able to warm-restart).
  save_dataset(telemetry, csv_dir);
  const double csv_bytes = static_cast<double>(dataset_csv_bytes(csv_dir));

  // Full-precision reference: how the codec fares when the mantissa is
  // pure noise (worst case; reported, not gated).
  double full_precision_ratio = 0.0;
  {
    const std::string raw_dir = (work / "store_raw").string();
    TimeSeriesStore raw_store = TimeSeriesStore::create(
        raw_dir, store_meta_from_dataset(sim.data));
    store_append_dataset(raw_store, sim.data, 0, T, nullptr,
                         &sim.data.labels);
    raw_store.flush();
    const std::string raw_csv = (work / "csv_raw").string();
    save_dataset(sim.data, raw_csv);
    full_precision_ratio =
        static_cast<double>(dataset_csv_bytes(raw_csv)) /
        static_cast<double>(raw_store.sealed_bytes());
  }

  // Write path: bulk append through the page builder, timed.
  TimeSeriesStore store = TimeSeriesStore::create(
      store_dir, store_meta_from_dataset(telemetry));
  Stopwatch write_watch;
  store_append_dataset(store, telemetry, 0, T, nullptr, &telemetry.labels);
  store.flush();
  const double write_seconds = write_watch.elapsed_s();
  const double store_bytes = static_cast<double>(store.sealed_bytes());
  const double ratio = csv_bytes / store_bytes;
  const double samples_per_sec =
      static_cast<double>(store.stats().samples_appended) / write_seconds;
  std::printf("csv %.0f B -> store %.0f B (%.1fx; full-precision %.1fx), "
              "write %.0f samples/s\n",
              csv_bytes, store_bytes, ratio, full_precision_ratio,
              samples_per_sec);

  // Query path: full-fleet anomaly-rate scans (decompress every page,
  // aggregate the in-band bits at query time).
  const std::size_t kScans = 50;
  std::vector<double> scan_us;
  scan_us.reserve(kScans);
  AnomalyRateResult fleet;
  for (std::size_t i = 0; i < kScans; ++i) {
    Stopwatch watch;
    fleet = store_anomaly_rate(store, 0, T);
    scan_us.push_back(watch.elapsed_s() * 1e6);
  }
  const LatencyStats scan = summarize(scan_us);
  const double scanned_per_sec =
      static_cast<double>(fleet.samples) / (scan.p50_us * 1e-6);
  std::printf("fleet anomaly-rate scan: p50 %.0f us, p99 %.0f us "
              "(%.2fM samples/s), rate %.4f\n",
              scan.p50_us, scan.p99_us, scanned_per_sec * 1e-6, fleet.rate());

  // Top-K on the same store: the dashboard query.
  std::vector<double> top_us;
  top_us.reserve(kScans);
  for (std::size_t i = 0; i < kScans; ++i) {
    Stopwatch watch;
    const auto top = store_top_anomalous_nodes(store, 5, 0, T);
    top_us.push_back(watch.elapsed_s() * 1e6);
    if (top.empty()) return 1;  // keep the call alive past the optimizer
  }
  const LatencyStats top = summarize(top_us);

  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"dataset\": \"d1_sim\",\n");
    std::fprintf(f, "  \"nodes\": %zu,\n", sim.data.num_nodes());
    std::fprintf(f, "  \"metrics\": %zu,\n", sim.data.num_metrics());
    std::fprintf(f, "  \"ticks\": %zu,\n", T);
    std::fprintf(f, "  \"samples\": %zu,\n", total_samples);
    std::fprintf(f, "  \"csv_bytes\": %.0f,\n", csv_bytes);
    std::fprintf(f, "  \"store_bytes\": %.0f,\n", store_bytes);
    std::fprintf(f, "  \"compression_ratio\": %.2f,\n", ratio);
    std::fprintf(f, "  \"full_precision_ratio\": %.2f,\n",
                 full_precision_ratio);
    std::fprintf(f, "  \"bytes_per_sample\": %.2f,\n",
                 store_bytes / static_cast<double>(total_samples));
    std::fprintf(f, "  \"write_samples_per_sec\": %.0f,\n", samples_per_sec);
    std::fprintf(f, "  \"anomaly_rate_scan_p50_us\": %.1f,\n", scan.p50_us);
    std::fprintf(f, "  \"anomaly_rate_scan_p99_us\": %.1f,\n", scan.p99_us);
    std::fprintf(f, "  \"anomaly_rate_scan_max_us\": %.1f,\n", scan.max_us);
    std::fprintf(f, "  \"topk_scan_p50_us\": %.1f,\n", top.p50_us);
    std::fprintf(f, "  \"topk_scan_p99_us\": %.1f\n", top.p99_us);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    fs::remove_all(work);
    return 1;
  }
  fs::remove_all(work);

  // Size gate: the store must stay >= 5x denser than CSV on D1-sim.
  const double kMinRatio = 5.0;
  if (ratio < kMinRatio) {
    std::fprintf(stderr,
                 "FAIL: compression ratio %.2fx is below the %.0fx floor\n",
                 ratio, kMinRatio);
    return 1;
  }
  return 0;
}
