// Rolling model generations (DESIGN.md §12): RCU registry snapshot
// completeness under concurrent publish, G=1 consensus bitwise equivalence
// with the single-model serve path, the self-healing retrainer's failure
// semantics (crash-mid-train, crash-mid-publish, poisoned segments, circuit
// breaker), CRC-framed checkpoint round-trips, and a concurrent
// score/hot-swap race test (run under TSan via the race label).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/nodesentry.hpp"
#include "nn/module.hpp"
#include "serve/model_registry.hpp"
#include "serve/engine.hpp"
#include "serve/replay.hpp"
#include "serve/retrainer.hpp"
#include "sim/dataset_builder.hpp"
#include "sim/telemetry_faults.hpp"
#include "store/query.hpp"
#include "store/writer.hpp"

namespace ns {
namespace fs = std::filesystem;
namespace {

std::string temp_dir(const char* tag) {
  const std::string dir = fs::temp_directory_path() /
                          (std::string("ns_gens_") + tag + "_" +
                           std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string params_blob(const TransformerReconstructor& model) {
  std::ostringstream os(std::ios::binary);
  save_parameters(model, os);
  return std::move(os).str();
}

// One fitted detector shared by the suite (the serve engine and retrainer
// never mutate it: models run in eval mode, clones are trained privately).
class GenerationsFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SimDatasetConfig sim_config = d2_sim_config(0.3, 7);
    sim_config.missing_rate = 0.0;  // clean stream -> exact equivalence
    sim_config.anomaly_ratio = 0.01;
    sim_ = new SimDataset(build_sim_dataset(sim_config));
    sentry_ = new NodeSentry(fast_config());
    sentry_->fit(sim_->data, sim_->train_end);
    batch_ = new NodeSentry::DetectReport(sentry_->detect());
  }

  static void TearDownTestSuite() {
    delete batch_;
    delete sentry_;
    delete sim_;
    batch_ = nullptr;
    sentry_ = nullptr;
    sim_ = nullptr;
  }

  static NodeSentryConfig fast_config() {
    NodeSentryConfig config;
    config.model.d_model = 24;
    config.model.num_layers = 2;
    config.model.num_heads = 2;
    config.model.ffn_hidden = 32;
    config.train_epochs = 2;
    config.learning_rate = 3e-3f;
    config.max_tokens_per_segment = 96;
    config.train_window = 32;
    config.match_period = 60;
    config.threshold_window = 40;
    config.k_max = 6;
    config.seed = 99;
    config.incremental_updates = false;
    return config;
  }

  static RetrainerConfig fast_retrain_config() {
    RetrainerConfig config;
    config.min_segments = 1;
    config.max_segments = 2;
    config.train_window = 32;
    config.epochs = 1;
    config.batch = 4;
    config.backoff_initial = std::chrono::milliseconds(0);
    return config;
  }

  /// Fills `retrainer`'s per-cluster rings with real serving segments by
  /// replaying the stream through a throwaway engine that offers every
  /// matched closed segment.
  static void feed(Retrainer& retrainer, obs::Registry& obs) {
    ServeConfig config;
    config.registry = &obs;
    config.retrainer = &retrainer;
    ServeEngine engine(*sentry_, config);
    serve_replay(engine, sim_->data, sim_->train_end);
  }

  static std::vector<std::shared_ptr<const GenerationSet>> all_snapshots(
      const GenerationRegistry& registry) {
    std::vector<std::shared_ptr<const GenerationSet>> snaps;
    for (std::size_t c = 0; c < registry.num_clusters(); ++c)
      snaps.push_back(registry.snapshot(c));
    return snaps;
  }

  static SimDataset* sim_;
  static NodeSentry* sentry_;
  static NodeSentry::DetectReport* batch_;
};

SimDataset* GenerationsFixture::sim_ = nullptr;
NodeSentry* GenerationsFixture::sentry_ = nullptr;
NodeSentry::DetectReport* GenerationsFixture::batch_ = nullptr;

TEST_F(GenerationsFixture, RegistrySnapshotsCompleteUnderConcurrentPublish) {
  obs::Registry obs;
  GenerationRegistry registry(sentry_->library().size(), 3, &obs);
  registry.seed_from_library(sentry_->library());
  const ClusterEntry& entry = sentry_->library().clusters()[0];

  constexpr std::size_t kPublishes = 200;
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r)
    readers.emplace_back([&] {
      std::uint64_t last_newest = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto snap = registry.snapshot(0);
        // Invariants every reader must observe on every load: non-empty,
        // bounded by G, strictly ascending consecutive gen ids, every
        // generation fully formed, and the newest id never goes backwards.
        if (snap->generations.empty() || snap->generations.size() > 3) {
          ++violations;
          continue;
        }
        for (std::size_t g = 0; g < snap->generations.size(); ++g) {
          const ModelGeneration& gen = snap->generations[g];
          if (gen.model == nullptr || gen.residual_scale.numel() == 0)
            ++violations;
          if (g > 0 &&
              gen.gen_id != snap->generations[g - 1].gen_id + 1)
            ++violations;
        }
        const std::uint64_t newest = snap->generations.back().gen_id;
        if (newest < last_newest) ++violations;
        last_newest = newest;
      }
    });
  for (std::size_t p = 0; p < kPublishes; ++p) {
    ModelGeneration gen;
    gen.model = entry.model;
    gen.residual_scale = entry.residual_scale.clone();
    gen.baseline_error = entry.baseline_error;
    registry.publish(0, std::move(gen));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0u);
  const auto snap = registry.snapshot(0);
  EXPECT_EQ(snap->generations.size(), 3u);
  EXPECT_EQ(snap->generations.back().gen_id, kPublishes);
  EXPECT_GE(registry.epoch(), kPublishes);
}

TEST_F(GenerationsFixture, ConsensusWithOneGenerationMatchesBatchBitwise) {
  obs::Registry obs;
  ServeConfig config;
  config.registry = &obs;
  config.consensus_scoring = true;  // G = 1, Q = 1 defaults
  ServeEngine engine(*sentry_, config);
  const ReplayReport rep = serve_replay(engine, sim_->data, sim_->train_end);

  ASSERT_EQ(rep.result.detections.size(), batch_->detections.size());
  const DetectionDelta delta =
      compare_detections(rep.result.detections, batch_->detections);
  EXPECT_EQ(delta.max_abs_score_delta, 0.0);  // bitwise, not just close
  EXPECT_EQ(delta.prediction_mismatches, 0u);
  EXPECT_GT(rep.result.stats.consensus_points, 0u);
  ASSERT_NE(engine.generation_registry(), nullptr);
  EXPECT_EQ(engine.generation_registry()->max_generations(), 1u);
}

TEST_F(GenerationsFixture, RetrainerPublishesAndConsensusServesNewSet) {
  obs::Registry obs;
  GenerationRegistry registry(sentry_->library().size(), 3, &obs);
  Retrainer retrainer(registry, sentry_->library(), sentry_->model_config(),
                      fast_retrain_config(), &obs);

  // First replay seeds the registry (via the engine) and feeds the rings.
  ServeConfig config;
  config.registry = &obs;
  config.consensus_scoring = true;
  config.generations = 3;
  config.consensus_quorum = 2;
  config.generation_registry = &registry;
  config.retrainer = &retrainer;
  {
    ServeEngine engine(*sentry_, config);
    serve_replay(engine, sim_->data, sim_->train_end);
  }
  const RetrainCycleReport report = retrainer.run_cycle();
  EXPECT_GT(report.clusters_with_data, 0u);
  EXPECT_GT(report.retrains_published, 0u);
  EXPECT_EQ(report.retrains_failed, 0u);

  bool saw_multi_generation = false;
  for (const auto& snap : all_snapshots(registry))
    if (snap->generations.size() >= 2) saw_multi_generation = true;
  EXPECT_TRUE(saw_multi_generation);

  // A fresh engine over the retrained registry must serve cleanly with the
  // staggered set (finite scores, consensus votes happening).
  ServeEngine engine(*sentry_, config);
  const ReplayReport rep = serve_replay(engine, sim_->data, sim_->train_end);
  EXPECT_GT(rep.result.stats.consensus_points, 0u);
  for (const NodeDetection& det : rep.result.detections)
    for (const float s : det.scores) ASSERT_TRUE(std::isfinite(s));
}

TEST_F(GenerationsFixture, CrashMidTrainNeverTouchesServingSet) {
  obs::Registry obs;
  GenerationRegistry registry(sentry_->library().size(), 3, &obs);
  registry.seed_from_library(sentry_->library());
  RetrainFaultInjector faults;
  RetrainerConfig config = fast_retrain_config();
  config.max_attempts = 2;
  Retrainer retrainer(registry, sentry_->library(), sentry_->model_config(),
                      config, &obs, &faults);
  feed(retrainer, obs);

  const auto before = all_snapshots(registry);
  faults.arm(RetrainFaultType::kCrashMidTrain,
             RetrainFaultInjector::kEveryCluster, 1u << 20);
  const RetrainCycleReport report = retrainer.run_cycle();

  EXPECT_GT(report.clusters_with_data, 0u);
  EXPECT_EQ(report.retrains_published, 0u);
  EXPECT_EQ(report.retrains_failed, report.clusters_with_data);
  // max_attempts = 2: every failed cluster retried exactly once.
  EXPECT_EQ(report.retries, report.clusters_with_data);
  EXPECT_GT(faults.fired(), 0u);
  const auto after = all_snapshots(registry);
  for (std::size_t c = 0; c < before.size(); ++c)
    EXPECT_EQ(before[c].get(), after[c].get())
        << "cluster " << c << ": serving set changed by a crashed retrain";
}

TEST_F(GenerationsFixture, CrashMidPublishKeepsCheckpointComplete) {
  const std::string dir = temp_dir("midpub");
  obs::Registry obs;
  GenerationRegistry registry(sentry_->library().size(), 3, &obs);
  registry.seed_from_library(sentry_->library());
  RetrainFaultInjector faults;
  RetrainerConfig config = fast_retrain_config();
  config.checkpoint_dir = dir;
  Retrainer retrainer(registry, sentry_->library(), sentry_->model_config(),
                      config, &obs, &faults);

  // Phase 1: a clean cycle publishes and checkpoints.
  feed(retrainer, obs);
  const RetrainCycleReport clean = retrainer.run_cycle();
  ASSERT_GT(clean.retrains_published, 0u);
  const auto before = all_snapshots(registry);

  // Phase 2: every attempt crashes right before the atomic swap.
  faults.arm(RetrainFaultType::kCrashMidPublish,
             RetrainFaultInjector::kEveryCluster, 1u << 20);
  feed(retrainer, obs);
  const RetrainCycleReport crashed = retrainer.run_cycle();
  EXPECT_EQ(crashed.retrains_published, 0u);
  EXPECT_GT(crashed.retrains_failed, 0u);

  // Serving set unchanged...
  const auto after = all_snapshots(registry);
  for (std::size_t c = 0; c < before.size(); ++c)
    EXPECT_EQ(before[c].get(), after[c].get()) << "cluster " << c;
  // ...and the on-disk checkpoint is still the previous complete one:
  // loadable, CRC-valid, with exactly the pre-crash generation sets.
  obs::Registry obs2;
  GenerationRegistry restored(sentry_->library().size(), 3, &obs2);
  ASSERT_NO_THROW(
      restored.load(dir, sentry_->model_config(), fast_config().seed));
  for (std::size_t c = 0; c < before.size(); ++c) {
    const auto loaded = restored.snapshot(c);
    ASSERT_EQ(loaded->generations.size(), before[c]->generations.size());
    for (std::size_t g = 0; g < loaded->generations.size(); ++g)
      EXPECT_EQ(loaded->generations[g].gen_id,
                before[c]->generations[g].gen_id);
  }
  fs::remove_all(dir);
}

TEST_F(GenerationsFixture, PoisonedSegmentsRejectedWithoutRetry) {
  obs::Registry obs;
  GenerationRegistry registry(sentry_->library().size(), 3, &obs);
  registry.seed_from_library(sentry_->library());
  RetrainFaultInjector faults;
  Retrainer retrainer(registry, sentry_->library(), sentry_->model_config(),
                      fast_retrain_config(), &obs, &faults);
  feed(retrainer, obs);

  const auto before = all_snapshots(registry);
  faults.arm(RetrainFaultType::kPoisonedSegments,
             RetrainFaultInjector::kEveryCluster, 1u << 20);
  const RetrainCycleReport report = retrainer.run_cycle();

  EXPECT_GT(report.clusters_with_data, 0u);
  EXPECT_EQ(report.retrains_published, 0u);
  EXPECT_EQ(report.retrains_rejected, report.clusters_with_data);
  // Rejection is deterministic-bad-data: no retries were burned on it.
  EXPECT_EQ(report.retries, 0u);
  const auto after = all_snapshots(registry);
  for (std::size_t c = 0; c < before.size(); ++c)
    EXPECT_EQ(before[c].get(), after[c].get())
        << "cluster " << c << ": poisoned retrain reached the serving set";
}

TEST_F(GenerationsFixture, BreakerOpensSkipsAndRecoversThroughProbe) {
  obs::Registry obs;
  GenerationRegistry registry(sentry_->library().size(), 3, &obs);
  registry.seed_from_library(sentry_->library());
  RetrainFaultInjector faults;
  RetrainerConfig config = fast_retrain_config();
  config.max_attempts = 1;
  config.breaker_threshold = 2;
  config.breaker_cooldown = 2;
  Retrainer retrainer(registry, sentry_->library(), sentry_->model_config(),
                      config, &obs, &faults);

  faults.arm(RetrainFaultType::kCrashMidTrain,
             RetrainFaultInjector::kEveryCluster, 1u << 20);
  feed(retrainer, obs);
  const RetrainCycleReport c1 = retrainer.run_cycle();
  ASSERT_GT(c1.retrains_failed, 0u);
  for (std::size_t c = 0; c < registry.num_clusters(); ++c)
    EXPECT_NE(retrainer.breaker(c), BreakerState::kOpen) << "cluster " << c;

  feed(retrainer, obs);
  const RetrainCycleReport c2 = retrainer.run_cycle();
  ASSERT_GT(c2.retrains_failed, 0u);
  std::size_t open_cluster = registry.num_clusters();
  for (std::size_t c = 0; c < registry.num_clusters(); ++c)
    if (retrainer.breaker(c) == BreakerState::kOpen) open_cluster = c;
  ASSERT_LT(open_cluster, registry.num_clusters())
      << "no breaker opened after " << config.breaker_threshold
      << " consecutive failed cycles";

  // Open: the next cycle skips the cluster even though data is waiting.
  feed(retrainer, obs);
  const RetrainCycleReport c3 = retrainer.run_cycle();
  EXPECT_GT(c3.skipped_breaker_open, 0u);
  EXPECT_EQ(retrainer.breaker(open_cluster), BreakerState::kOpen);

  // Cooldown over: the breaker half-opens for one probe; with the fault
  // gone the probe publishes and the breaker closes.
  faults.disarm_all();
  feed(retrainer, obs);
  const RetrainCycleReport c4 = retrainer.run_cycle();
  EXPECT_GT(c4.retrains_published, 0u);
  EXPECT_EQ(retrainer.breaker(open_cluster), BreakerState::kClosed);
}

TEST_F(GenerationsFixture, CheckpointRoundTripPreservesEverything) {
  const std::string dir = temp_dir("roundtrip");
  obs::Registry obs;
  GenerationRegistry registry(sentry_->library().size(), 3, &obs);
  registry.seed_from_library(sentry_->library());
  // A second generation for cluster 0 with distinctive metadata, then
  // quarantine the seed so the flag round-trips too.
  const ClusterEntry& entry = sentry_->library().clusters()[0];
  {
    ModelGeneration gen;
    gen.model = entry.model;
    gen.residual_scale = entry.residual_scale.clone();
    gen.baseline_error = 2.5;
    gen.trained_cycle = 7;
    registry.publish(0, std::move(gen));
  }
  ASSERT_TRUE(registry.quarantine(0, 0));
  registry.save(dir);

  obs::Registry obs2;
  GenerationRegistry restored(sentry_->library().size(), 3, &obs2);
  restored.load(dir, sentry_->model_config(), fast_config().seed);
  for (std::size_t c = 0; c < registry.num_clusters(); ++c) {
    const auto a = registry.snapshot(c);
    const auto b = restored.snapshot(c);
    ASSERT_EQ(a->generations.size(), b->generations.size()) << "cluster " << c;
    for (std::size_t g = 0; g < a->generations.size(); ++g) {
      const ModelGeneration& ga = a->generations[g];
      const ModelGeneration& gb = b->generations[g];
      EXPECT_EQ(ga.gen_id, gb.gen_id);
      EXPECT_EQ(ga.trained_cycle, gb.trained_cycle);
      EXPECT_EQ(ga.baseline_error, gb.baseline_error);
      EXPECT_EQ(ga.quarantined, gb.quarantined);
      ASSERT_EQ(ga.residual_scale.numel(), gb.residual_scale.numel());
      const auto fa = ga.residual_scale.flat();
      const auto fb = gb.residual_scale.flat();
      for (std::size_t i = 0; i < fa.size(); ++i) EXPECT_EQ(fa[i], fb[i]);
      EXPECT_EQ(params_blob(*ga.model), params_blob(*gb.model))
          << "cluster " << c << " gen " << g;
    }
  }
  // A truncated cluster file must fail loudly (CRC framing), not serve
  // a partial generation set.
  const std::string victim = (fs::path(dir) / "gens_0.bin").string();
  fs::resize_file(victim, fs::file_size(victim) / 2);
  obs::Registry obs3;
  GenerationRegistry corrupt(sentry_->library().size(), 3, &obs3);
  EXPECT_THROW(corrupt.load(dir, sentry_->model_config(), fast_config().seed),
               Error);
  fs::remove_all(dir);
}

TEST_F(GenerationsFixture, ConcurrentScoreAndHotSwapIsRaceFree) {
  // The TSan target: live ingest + scoring on one side, a retrainer
  // publishing (hot-swapping generations) on the other, meeting only at
  // the registry's atomic snapshot/publish and the offer ring.
  obs::Registry obs;
  GenerationRegistry registry(sentry_->library().size(), 3, &obs);
  Retrainer retrainer(registry, sentry_->library(), sentry_->model_config(),
                      fast_retrain_config(), &obs);

  ServeConfig config;
  config.registry = &obs;
  config.consensus_scoring = true;
  config.generations = 3;
  config.consensus_quorum = 2;
  config.generation_registry = &registry;
  config.retrainer = &retrainer;
  ServeEngine engine(*sentry_, config);  // seeds the registry

  std::atomic<bool> stop{false};
  std::thread trainer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      retrainer.run_cycle();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const ReplayReport rep = serve_replay(engine, sim_->data, sim_->train_end);
  stop.store(true, std::memory_order_release);
  trainer.join();

  EXPECT_GT(rep.result.stats.points_scored, 0u);
  for (const NodeDetection& det : rep.result.detections)
    for (const float s : det.scores)
      ASSERT_TRUE(std::isfinite(s)) << "non-finite score under hot-swap";
}

// Regression for the close_segment/retrainer ordering note: offers happen
// at segment close, BEFORE finalize-time detection flags exist — by
// design, since a live retrainer cannot wait for end-of-stream. The
// invariant that must hold regardless of retrain timing is that sealed
// store rows and reported detections agree bit for bit; the offer counter
// pins the accounting side (offers track matched closed segments, not
// flagged ones).
TEST_F(GenerationsFixture, ServeRetrainerStoreAgreement) {
  const std::string dir = temp_dir("retrain_store");
  obs::Registry obs;
  TimeSeriesStore store =
      TimeSeriesStore::create(dir, store_meta_from_dataset(sim_->data));
  store_append_dataset(store, sim_->data, 0, sim_->train_end);
  StoreWriter writer(std::move(store), StoreWriterConfig{}, &obs);
  GenerationRegistry registry(sentry_->library().size(), 2, &obs);
  registry.seed_from_library(sentry_->library());
  Retrainer retrainer(registry, sentry_->library(), sentry_->model_config(),
                      fast_retrain_config(), &obs);

  ServeConfig config;
  config.registry = &obs;
  config.consensus_scoring = true;
  config.generations = 2;
  config.consensus_quorum = 1;
  config.generation_registry = &registry;
  config.retrainer = &retrainer;
  config.store_writer = &writer;
  ServeEngine engine(*sentry_, config);

  // Retrain mid-stream, deterministically: a cycle every ~40 ticks on the
  // streaming thread. Generations hot-swap while segments keep closing
  // and the store keeps retaining rows.
  ReplayOptions options;
  options.progress_every = sim_->data.num_nodes() * 40;
  options.on_progress = [&retrainer](std::size_t) { retrainer.run_cycle(); };
  const ReplayReport rep =
      serve_replay(engine, sim_->data, sim_->train_end, options);
  writer.drain();

  EXPECT_GT(retrainer.cycles(), 0u);
  // Offer accounting: every matched closed segment was offered, flags or
  // no flags; nothing beyond the closed-segment count can be offered.
  EXPECT_GT(retrainer.segments_offered(), 0u);
  EXPECT_LE(retrainer.segments_offered(), rep.result.stats.segments_closed);

  // The store's in-band bits were stamped at finalize from the SAME
  // predictions the replay reports — mid-stream retraining must not open
  // a gap between them.
  const StoreDelta delta = compare_detections_with_store(
      rep.result.detections, writer.store(), sim_->train_end);
  EXPECT_EQ(delta.samples_compared, rep.samples_streamed);
  EXPECT_EQ(delta.flag_mismatches, 0u);
  EXPECT_EQ(delta.samples_unflagged, 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ns
