file(REMOVE_RECURSE
  "../bench/bench_challenge1_dtw"
  "../bench/bench_challenge1_dtw.pdb"
  "CMakeFiles/bench_challenge1_dtw.dir/bench_challenge1_dtw.cpp.o"
  "CMakeFiles/bench_challenge1_dtw.dir/bench_challenge1_dtw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_challenge1_dtw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
