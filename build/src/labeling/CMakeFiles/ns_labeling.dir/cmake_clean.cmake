file(REMOVE_RECURSE
  "CMakeFiles/ns_labeling.dir/cluster_adjust.cpp.o"
  "CMakeFiles/ns_labeling.dir/cluster_adjust.cpp.o.d"
  "CMakeFiles/ns_labeling.dir/label_store.cpp.o"
  "CMakeFiles/ns_labeling.dir/label_store.cpp.o.d"
  "CMakeFiles/ns_labeling.dir/suggest.cpp.o"
  "CMakeFiles/ns_labeling.dir/suggest.cpp.o.d"
  "libns_labeling.a"
  "libns_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
