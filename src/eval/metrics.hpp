// Point-wise anomaly-detection evaluation (paper §4.1.4).
//
// Implements the widely used point-adjustment strategy: a contiguous ground
// truth anomaly segment counts as detected if the method flags any point
// inside it (then the whole segment is credited). Points within a
// transition-guard window around job boundaries (paper: 1 minute) are
// excluded. Precision/recall/AUC are computed per node and averaged across
// nodes; F1 is derived from the averaged precision and recall.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ts/mts.hpp"

namespace ns {

struct DetectionMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double auc = 0.0;
};

/// Per-node detector output: anomaly scores (higher = more anomalous) and
/// binary predictions from the method's own thresholding.
struct NodeDetection {
  std::vector<float> scores;
  std::vector<std::uint8_t> predictions;
};

/// Evaluation mask: true where a timestamp participates in scoring.
/// Excludes `guard_steps` samples at the start and end of every job span
/// and everything before `eval_begin` (the train/test split point).
std::vector<std::uint8_t> evaluation_mask(
    std::span<const JobSpan> spans, std::size_t total_timestamps,
    std::size_t eval_begin, std::size_t guard_steps);

/// Applies point adjustment: returns a copy of `predictions` where every
/// ground-truth anomaly segment containing at least one masked-in predicted
/// point is fully marked. Masked-out points are ignored for the "any hit"
/// test but still expanded (they are excluded again during counting).
std::vector<std::uint8_t> point_adjust(
    std::span<const std::uint8_t> predictions,
    std::span<const std::uint8_t> labels,
    std::span<const std::uint8_t> mask);

/// Precision/recall/F1 on one node after point adjustment, restricted to
/// masked-in points.
DetectionMetrics node_prf(std::span<const std::uint8_t> predictions,
                          std::span<const std::uint8_t> labels,
                          std::span<const std::uint8_t> mask);

/// ROC AUC on one node: scores within each ground-truth segment are
/// replaced by the segment maximum (the point-adjust analogue for ranking),
/// then the Mann–Whitney statistic is computed over masked-in points.
/// Returns 0.5 when either class is absent.
double node_auc(std::span<const float> scores,
                std::span<const std::uint8_t> labels,
                std::span<const std::uint8_t> mask);

/// Averages per-node precision/recall/AUC over nodes that have at least one
/// labeled anomaly in their masked region (anomaly-free nodes cannot
/// contribute recall); F1 = harmonic mean of the averaged P and R.
DetectionMetrics aggregate_nodes(
    const std::vector<NodeDetection>& detections,
    const std::vector<std::vector<std::uint8_t>>& labels,
    const std::vector<std::vector<std::uint8_t>>& masks);

}  // namespace ns
