// store_query — inspect an embedded time-series store (DESIGN.md §13)
// written by `nodesentry_serve --store-dir`. Every aggregate is computed
// at query time from the in-band anomaly/validity bits: nothing is
// pre-aggregated on disk.
//
//   store_query <store-dir> info
//   store_query <store-dir> rate [--node N] [--begin T] [--end T]
//   store_query <store-dir> top [--k K] [--begin T] [--end T]
//   store_query <store-dir> export-csv <out-dir> [--begin T] [--end T]
//   store_query <store-dir> dump --node N [--begin T] [--end T] [--limit L]
//
//   info        schema, per-node sample/page/segment counts, sealed bytes
//   rate        anomaly rate + invalid fraction over [begin, end)
//   top         the K most anomalous nodes over [begin, end)
//   export-csv  rebuild the range as an MtsDataset and save_dataset() it
//               (the CSV export is a query, not a stored artifact)
//   dump        print raw samples of one node
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "io/dataset_io.hpp"
#include "store/query.hpp"

namespace {

using namespace ns;

const char* arg_value(int argc, char** argv, const char* flag,
                      const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  return fallback;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: store_query <store-dir> <verb> [options]\n"
      "  info\n"
      "  rate [--node N] [--begin T] [--end T]\n"
      "  top [--k K] [--begin T] [--end T]\n"
      "  export-csv <out-dir> [--begin T] [--end T]\n"
      "  dump --node N [--begin T] [--end T] [--limit L]\n");
  return 2;
}

void print_rate(const AnomalyRateResult& rate) {
  std::printf("samples %zu  anomalous %zu (rate %.4f)  invalid %zu "
              "(fraction %.4f)\n",
              rate.samples, rate.anomalous, rate.rate(), rate.invalid,
              rate.invalid_fraction());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string dir = argv[1];
  const std::string verb = argv[2];

  TimeSeriesStore store = TimeSeriesStore::open(dir);
  const std::size_t begin = static_cast<std::size_t>(std::strtoull(
      arg_value(argc, argv, "--begin", "0"), nullptr, 10));
  std::size_t end = static_cast<std::size_t>(std::strtoull(
      arg_value(argc, argv, "--end", "0"), nullptr, 10));
  if (end == 0) end = store.end_tick();

  if (verb == "info") {
    std::printf("store %s: %zu nodes x %zu raw metrics, interval %.1f s, "
                "ticks [*, %zu)\n",
                dir.c_str(), store.num_nodes(), store.num_metrics(),
                store.meta().interval_seconds, store.end_tick());
    std::printf("config: page %zu B, %zu pages/segment, retention %zu "
                "segments/node%s\n",
                store.config().page_bytes, store.config().segment_pages,
                store.config().retain_segments,
                store.config().retain_segments == 0 ? " (unlimited)" : "");
    std::uint64_t samples = 0;
    for (std::size_t n = 0; n < store.num_nodes(); ++n) {
      samples += store.node_samples(n);
      std::printf("  %-14s %7zu samples in %4zu pages / %2zu segments, "
                  "first tick %zu\n",
                  store.meta().node_names[n].c_str(), store.node_samples(n),
                  store.node_pages(n), store.node_segments(n),
                  store.node_first_tick(n));
    }
    const std::uint64_t bytes = store.sealed_bytes();
    std::printf("total: %" PRIu64 " samples, %" PRIu64
                " bytes sealed (%.2f bytes/sample across %zu metrics)\n",
                samples, bytes,
                samples > 0 ? static_cast<double>(bytes) /
                                  static_cast<double>(samples)
                            : 0.0,
                store.num_metrics());
    return 0;
  }

  if (verb == "rate") {
    const char* node_arg = arg_value(argc, argv, "--node", "");
    if (node_arg[0] != '\0') {
      const std::size_t node =
          static_cast<std::size_t>(std::strtoull(node_arg, nullptr, 10));
      std::printf("node %s [%zu, %zu): ",
                  store.meta().node_names[node].c_str(), begin, end);
      print_rate(store_anomaly_rate(store, node, begin, end));
    } else {
      std::printf("fleet [%zu, %zu): ", begin, end);
      print_rate(store_anomaly_rate(store, begin, end));
    }
    return 0;
  }

  if (verb == "top") {
    const std::size_t k = static_cast<std::size_t>(
        std::strtoull(arg_value(argc, argv, "--k", "5"), nullptr, 10));
    for (const NodeAnomalyRate& entry :
         store_top_anomalous_nodes(store, k, begin, end))
      std::printf("%-14s rate %.4f  (%zu anomalous / %zu samples, "
                  "%zu invalid)\n",
                  entry.node_name.c_str(), entry.rate.rate(),
                  entry.rate.anomalous, entry.rate.samples,
                  entry.rate.invalid);
    return 0;
  }

  if (verb == "export-csv") {
    if (argc < 4) return usage();
    const std::string out_dir = argv[3];
    const MtsDataset dataset = store_to_dataset(store, begin, end);
    save_dataset(dataset, out_dir);
    std::printf("exported [%zu, %zu) to %s (%" PRIuMAX " CSV bytes from "
                "%" PRIu64 " sealed bytes)\n",
                begin, end, out_dir.c_str(), dataset_csv_bytes(out_dir),
                store.sealed_bytes());
    return 0;
  }

  if (verb == "dump") {
    const char* node_arg = arg_value(argc, argv, "--node", "");
    if (node_arg[0] == '\0') return usage();
    const std::size_t node =
        static_cast<std::size_t>(std::strtoull(node_arg, nullptr, 10));
    const std::size_t limit = static_cast<std::size_t>(std::strtoull(
        arg_value(argc, argv, "--limit", "20"), nullptr, 10));
    TimeSeriesStore::Cursor cursor = store.range(node, begin, end);
    StoreSample sample;
    std::size_t printed = 0;
    while (printed < limit && cursor.next(sample)) {
      std::printf("t=%zu job=%lld anomaly=%d valid=%d |", sample.t,
                  static_cast<long long>(sample.job_id),
                  sample.anomaly ? 1 : 0, sample.valid ? 1 : 0);
      const std::size_t show = std::min<std::size_t>(sample.values.size(), 6);
      for (std::size_t m = 0; m < show; ++m)
        std::printf(" %.6g", static_cast<double>(sample.values[m]));
      if (show < sample.values.size()) std::printf(" ...");
      std::printf("\n");
      ++printed;
    }
    return 0;
  }

  return usage();
}
