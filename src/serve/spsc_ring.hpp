// Lock-free single-producer / single-consumer ring (the fleet's per-shard
// ingest lane, DESIGN.md §14).
//
// One producer (the collector thread routing samples) and one consumer
// (the shard worker) each own one end: the producer writes slots and
// publishes `tail_` with a release store, the consumer reads slots behind
// an acquire load of `tail_` and retires them through `head_`. No CAS, no
// mutex, no allocation after construction — a push/pop pair is two relaxed
// loads, one acquire load, a slot move, and one release store. The indices
// live on separate cache lines so the two threads never false-share.
//
// Capacity is rounded up to a power of two; try_push/try_pop never block
// (the fleet's producer decides the full-ring policy — it spins with
// yield, counting the stall, because dropping raw samples would silently
// rewrite history downstream).
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace ns {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    NS_REQUIRE(capacity >= 2, "SpscRing: capacity " << capacity << " < 2");
    std::size_t pow2 = 1;
    while (pow2 < capacity) pow2 <<= 1;
    slots_.resize(pow2);
    mask_ = pow2 - 1;
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Producer only. Moves `value` into the ring and returns true; returns
  /// false (leaving `value` untouched) when the ring is full.
  bool try_push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == slots_.size())
      return false;  // full
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer only. Moves the oldest element into `out` and returns true;
  /// false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == head) return false;  // empty
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy (exact only on the producer or consumer thread).
  std::size_t size() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

  bool empty() const { return size() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer cursor
};

}  // namespace ns
