// Raw monitoring-metric catalog and fan-out (paper Table 3).
//
// Node-level semantic signals are expanded into the high-dimensional raw
// metric space a Prometheus node exporter would report: per-core/per-unit
// copies of the same physical quantity (same semantic group -> aggregated
// back in §3.2 reduction), redundant affine derivations (r >= 0.99 ->
// dropped by correlation pruning) and near-constant bookkeeping metrics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/workload.hpp"
#include "ts/mts.hpp"

namespace ns {

enum class RawMetricKind : std::uint8_t {
  kUnitCopy = 0,  ///< one hardware unit's view of a semantic signal
  kDerived,       ///< affine near-duplicate of the node-level signal
  kConstant,      ///< bookkeeping metric (uptime flags, ksmd_run, ...)
};

struct RawMetricSpec {
  MetricMeta meta;
  RawMetricKind kind = RawMetricKind::kUnitCopy;
  Signal source = Signal::kCpuUser;  ///< ignored for kConstant
  double gain = 1.0;
  double offset = 0.0;
  double unit_noise = 0.01;  ///< per-unit measurement noise (relative)
  double constant_value = 0.0;
};

struct MetricCatalogConfig {
  std::size_t cores = 8;              ///< per-core fan-out for CPU signals
  std::size_t nics = 2;               ///< per-NIC fan-out for network signals
  std::size_t disks = 2;              ///< per-device fan-out for disk signals
  std::size_t derived_per_signal = 2; ///< redundant near-duplicates
  std::size_t constant_metrics = 4;
};

/// Builds the raw metric catalog. Output order is stable for a given config.
std::vector<RawMetricSpec> build_metric_catalog(
    const MetricCatalogConfig& config);

/// Number of distinct semantic groups in a catalog (the expected metric
/// count after perfect reduction, plus constants which reduce to themselves).
std::size_t catalog_semantic_groups(const std::vector<RawMetricSpec>& catalog);

}  // namespace ns
