// Hierarchical Agglomerative Clustering (paper §3.3).
//
// Bottom-up merging driven by the Lance–Williams update, so single,
// complete, average and Ward linkages share one implementation. The full
// merge sequence (dendrogram) is retained; cut(k) produces flat labels for
// any k without re-running, and choose_k_by_silhouette scans a k range and
// picks the silhouette-optimal cut, matching the paper's claim that
// "operators do not require iterative attempts to determine the optimal
// number of clusters".
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/distance.hpp"

namespace ns {

enum class Linkage { kSingle, kComplete, kAverage, kWard };

class Hac {
 public:
  /// Runs the agglomeration over the given points. O(n^2) memory, O(n^3)
  /// time — fine for the few hundred to few thousand job segments per
  /// training window.
  Hac(const std::vector<std::vector<float>>& points, Linkage linkage);

  std::size_t num_points() const { return n_; }

  /// Flat cluster labels in [0, k) for a cut producing k clusters.
  /// Labels are compacted in first-appearance order.
  std::vector<std::size_t> cut(std::size_t k) const;

  /// Heights (merge distances) in merge order; useful for dendrogram
  /// inspection and tests (must be non-decreasing for single/complete/
  /// average/ward on metric inputs... single linkage is always monotone).
  const std::vector<double>& merge_heights() const { return heights_; }

 private:
  struct Merge {
    std::size_t a, b;  // cluster ids being merged (point ids or n_+step)
  };

  std::size_t n_ = 0;
  std::vector<Merge> merges_;
  std::vector<double> heights_;
};

/// Silhouette coefficient of a flat labeling on a distance matrix.
/// Points in singleton clusters contribute 0 (scikit-learn convention);
/// returns 0 when there are fewer than 2 clusters.
double silhouette_score(const DistanceMatrix& distances,
                        const std::vector<std::size_t>& labels);

struct AutoKResult {
  std::size_t k = 0;
  double silhouette = 0.0;
  std::vector<std::size_t> labels;
};

/// Cuts `hac` at every k in [k_min, k_max] and returns the cut with the
/// highest silhouette score on `distances`.
AutoKResult choose_k_by_silhouette(const Hac& hac,
                                   const DistanceMatrix& distances,
                                   std::size_t k_min, std::size_t k_max);

}  // namespace ns
