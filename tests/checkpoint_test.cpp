// Crash-safe checkpointing tests: round-trip fidelity, mid-fit checkpoint
// consistency (kill-and-restore), and rejection of corrupted or truncated
// checkpoint files.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fileio.hpp"
#include "core/nodesentry.hpp"
#include "sim/dataset_builder.hpp"

namespace ns {
namespace fs = std::filesystem;
namespace {

// Pid-qualified so parallel ctest invocations (each gtest suite is its own
// process) cannot stomp each other's fixture directories.
std::string temp_dir(const std::string& name) {
  return (fs::temp_directory_path() / (name + "_" + std::to_string(::getpid())))
      .string();
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(is),
                           std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void flip_byte(const std::string& path, std::size_t offset) {
  std::vector<char> bytes = slurp(path);
  ASSERT_LT(offset, bytes.size());
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0xFF);
  spit(path, bytes);
}

// One fitted detector shared by every test in the suite (fitting is the
// expensive part); fit() runs with history checkpointing every 2 clusters.
class CheckpointFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ckpt_dir_ = temp_dir("ns_ckpt_fit");
    fs::remove_all(ckpt_dir_);
    SimDatasetConfig sim_config = d2_sim_config(0.35, 17);
    sim_config.anomaly_ratio = 0.01;
    sim_ = new SimDataset(build_sim_dataset(sim_config));
    NodeSentryConfig config = fast_config();
    config.checkpoint_dir = ckpt_dir_;
    config.checkpoint_every = 2;
    config.checkpoint_history = true;
    sentry_ = new NodeSentry(config);
    fit_report_ = sentry_->fit(sim_->data, sim_->train_end);
  }

  static void TearDownTestSuite() {
    delete sentry_;
    delete sim_;
    sentry_ = nullptr;
    sim_ = nullptr;
    fs::remove_all(ckpt_dir_);
  }

  /// Deterministic detection config: incremental updates off so detect()
  /// is a pure function of the library, comparable across restores.
  static NodeSentryConfig fast_config() {
    NodeSentryConfig config;
    config.model.d_model = 24;
    config.model.num_layers = 2;
    config.model.num_heads = 2;
    config.model.ffn_hidden = 32;
    config.train_epochs = 2;
    config.learning_rate = 3e-3f;
    config.max_tokens_per_segment = 96;
    config.train_window = 32;
    config.match_period = 60;
    config.threshold_window = 40;
    config.k_max = 6;
    config.seed = 99;
    config.incremental_updates = false;
    return config;
  }

  static std::string step_dir(std::size_t step) {
    return (fs::path(ckpt_dir_) / ("step_" + std::to_string(step))).string();
  }

  static std::string final_step_dir() {
    return step_dir(sentry_->library().size());
  }

  static std::string ckpt_dir_;
  static SimDataset* sim_;
  static NodeSentry* sentry_;
  static NodeSentry::FitReport fit_report_;
};

std::string CheckpointFixture::ckpt_dir_;
SimDataset* CheckpointFixture::sim_ = nullptr;
NodeSentry* CheckpointFixture::sentry_ = nullptr;
NodeSentry::FitReport CheckpointFixture::fit_report_;

TEST_F(CheckpointFixture, MidFitCheckpointsWritten) {
  ASSERT_GE(sentry_->library().size(), 2u);
  EXPECT_GE(fit_report_.checkpoints_written, 1u);
  // Every history snapshot is a complete library with a committed index.
  EXPECT_TRUE(fs::exists(fs::path(step_dir(2)) / "index.bin"));
  EXPECT_TRUE(fs::exists(fs::path(final_step_dir()) / "index.bin"));
}

TEST_F(CheckpointFixture, RestoreRoundTripsTheLibrary) {
  NodeSentry restored(fast_config());
  restored.restore(sim_->data, sim_->train_end, final_step_dir());
  const auto& a = sentry_->library().clusters();
  const auto& b = restored.library().clusters();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    EXPECT_EQ(a[c].centroid, b[c].centroid) << c;
    EXPECT_DOUBLE_EQ(a[c].radius, b[c].radius) << c;
    EXPECT_DOUBLE_EQ(a[c].baseline_error, b[c].baseline_error) << c;
    ASSERT_EQ(a[c].member_features.size(), b[c].member_features.size());
    for (std::size_t i = 0; i < a[c].member_features.size(); ++i)
      EXPECT_EQ(a[c].member_features[i], b[c].member_features[i]);
    ASSERT_EQ(a[c].metric_weights.numel(), b[c].metric_weights.numel());
    for (std::size_t m = 0; m < a[c].metric_weights.numel(); ++m)
      EXPECT_EQ(a[c].metric_weights.flat()[m], b[c].metric_weights.flat()[m]);
  }
}

TEST_F(CheckpointFixture, KillAndRestoreMatchesUninterruptedRun) {
  // A mid-fit checkpoint (after 2 clusters) must behave exactly like the
  // first 2 clusters of the uninterrupted run: restore it, and compare
  // detection against the final library truncated to the same prefix.
  NodeSentry killed(fast_config());
  killed.restore(sim_->data, sim_->train_end, step_dir(2));
  ASSERT_EQ(killed.library().size(), 2u);

  NodeSentry full(fast_config());
  full.restore(sim_->data, sim_->train_end, final_step_dir());
  full.mutable_library().clusters().resize(2);

  const auto da = killed.detect();
  const auto db = full.detect();
  ASSERT_EQ(da.detections.size(), db.detections.size());
  for (std::size_t n = 0; n < da.detections.size(); ++n) {
    const auto& sa = da.detections[n].scores;
    const auto& sb = db.detections[n].scores;
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t t = 0; t < sa.size(); ++t)
      ASSERT_NEAR(sa[t], sb[t], 1e-5) << "node " << n << " t " << t;
  }
}

TEST_F(CheckpointFixture, RestoreFromMissingDirectoryThrows) {
  NodeSentry fresh(fast_config());
  EXPECT_THROW(
      fresh.restore(sim_->data, sim_->train_end, temp_dir("ns_ckpt_nowhere")),
      ParseError);
}

class CorruptionTest : public CheckpointFixture {
 protected:
  void SetUp() override {
    scratch_ = temp_dir("ns_ckpt_corrupt");
    fs::remove_all(scratch_);
    fs::copy(final_step_dir(), scratch_, fs::copy_options::recursive);
  }
  void TearDown() override { fs::remove_all(scratch_); }

  void expect_load_rejected(const std::string& detail) {
    NodeSentry fresh(fast_config());
    EXPECT_THROW(fresh.restore(sim_->data, sim_->train_end, scratch_),
                 ParseError)
        << detail;
  }

  std::string scratch_;
};

TEST_F(CorruptionTest, EveryHeaderBytePositionRejected) {
  // Flip each of the 20 header bytes in turn: magic, version, payload
  // size and CRC corruption must all be rejected, never parsed.
  for (const char* file : {"index.bin", "scaler.bin", "cluster_0.bin"}) {
    const std::string path = (fs::path(scratch_) / file).string();
    const std::vector<char> pristine = slurp(path);
    ASSERT_GE(pristine.size(), kFrameHeaderSize);
    for (std::size_t offset = 0; offset < kFrameHeaderSize; ++offset) {
      flip_byte(path, offset);
      expect_load_rejected(std::string(file) + " header byte " +
                           std::to_string(offset));
      spit(path, pristine);
    }
  }
}

TEST_F(CorruptionTest, PayloadBitFlipsRejectedByCrc) {
  const std::string path = (fs::path(scratch_) / "cluster_0.bin").string();
  const std::vector<char> pristine = slurp(path);
  const std::size_t payload = pristine.size() - kFrameHeaderSize;
  ASSERT_GT(payload, 0u);
  // First, middle and last payload bytes (model params live at the end).
  for (const std::size_t rel :
       {std::size_t{0}, payload / 4, payload / 2, 3 * payload / 4,
        payload - 1}) {
    flip_byte(path, kFrameHeaderSize + rel);
    expect_load_rejected("payload byte " + std::to_string(rel));
    spit(path, pristine);
  }
}

TEST_F(CorruptionTest, TruncationRejected) {
  const std::string path = (fs::path(scratch_) / "cluster_0.bin").string();
  const std::vector<char> pristine = slurp(path);
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, std::size_t{kFrameHeaderSize},
        pristine.size() / 2, pristine.size() - 1}) {
    std::vector<char> cut(pristine.begin(),
                          pristine.begin() + static_cast<std::ptrdiff_t>(keep));
    spit(path, cut);
    expect_load_rejected("truncated to " + std::to_string(keep));
  }
  spit(path, pristine);
}

TEST_F(CorruptionTest, MissingClusterFileRejected) {
  fs::remove(fs::path(scratch_) / "cluster_0.bin");
  expect_load_rejected("missing cluster file");
}

TEST_F(CorruptionTest, IncrementalDetectionCheckpointsNewClusters) {
  // With a tiny match threshold every test pattern is "new"; incremental
  // detection must spawn clusters and checkpoint the grown library.
  NodeSentryConfig config = fast_config();
  config.incremental_updates = true;
  config.finetune_epochs = 1;
  config.match_threshold_factor = 0.05;
  const std::string grow_dir = temp_dir("ns_ckpt_grow");
  fs::remove_all(grow_dir);
  config.checkpoint_dir = grow_dir;
  config.checkpoint_every = 1;
  NodeSentry grower(config);
  grower.restore(sim_->data, sim_->train_end, scratch_);
  const std::size_t before = grower.library().size();
  const auto report = grower.detect();
  ASSERT_GT(report.incremental_new_clusters, 0u);
  ASSERT_TRUE(fs::exists(fs::path(grow_dir) / "index.bin"));
  // The checkpoint written after the last spawn holds every cluster the
  // library had at that moment — at least the pre-detect size + 1.
  NodeSentry reloaded(fast_config());
  reloaded.restore(sim_->data, sim_->train_end, grow_dir);
  EXPECT_GT(reloaded.library().size(), before);
  EXPECT_LE(reloaded.library().size(), grower.library().size());
  fs::remove_all(grow_dir);
}

TEST(FramedFile, RoundTripAndCorruptionPrimitives) {
  const std::string path = temp_dir("ns_framed_rt.bin");
  const std::string payload = "framed payload \x01\x02\x03 with bytes";
  write_framed_file(path, payload);
  EXPECT_EQ(read_framed_file(path), payload);
  // Every single-byte flip anywhere in the file must be rejected.
  const std::vector<char> pristine = slurp(path);
  for (std::size_t offset = 0; offset < pristine.size(); ++offset) {
    flip_byte(path, offset);
    EXPECT_THROW(read_framed_file(path), ParseError) << "byte " << offset;
    spit(path, pristine);
  }
  fs::remove(path);
}

TEST(FramedFile, MissingAndEmptyRejected) {
  EXPECT_THROW(read_framed_file(temp_dir("ns_framed_nowhere.bin")),
               ParseError);
  const std::string path = temp_dir("ns_framed_empty.bin");
  spit(path, {});
  EXPECT_THROW(read_framed_file(path), ParseError);
  fs::remove(path);
}

}  // namespace
}  // namespace ns
